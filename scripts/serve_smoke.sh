#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the wsnlocd service plane.
#
# Builds wsnlocd, boots it on an ephemeral port, then exercises the service
# contract: solve 200, sweep 200 (cache miss), identical sweep resubmitted
# answers from the memo (cache hit) with byte-identical body, the ops plane
# answers on the same port, and SIGTERM drains cleanly (exit 0, "drained
# cleanly" on stdout). Run from the repository root: ./scripts/serve_smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/wsnlocd" ./cmd/wsnlocd

"$workdir/wsnlocd" -addr 127.0.0.1:0 -workers 2 -cache "$workdir/cache" \
  > "$workdir/stdout.log" 2> "$workdir/stderr.log" &
daemon_pid=$!

# The daemon announces the bound address on stderr before serving.
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's|^wsnlocd: serving http://\([^/]*\)/.*|\1|p' "$workdir/stderr.log" | head -n1)
  [ -n "$addr" ] && break
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "serve_smoke: daemon exited before serving; stderr:" >&2
    cat "$workdir/stderr.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "serve_smoke: daemon address never appeared on stderr" >&2
  cat "$workdir/stderr.log" >&2
  exit 1
fi
echo "serve_smoke: daemon at http://$addr/"

cat > "$workdir/spec.json" <<'JSON'
{"scenario": {"N": 40, "Field": 60, "AnchorFrac": 0.25, "Seed": 3}, "algorithm": "centroid", "seed": 7}
JSON
cat > "$workdir/sweep.json" <<'JSON'
{
  "name": "serve-smoke",
  "scenarios": [{"N": 30, "Field": 50, "AnchorFrac": 0.3, "Seed": 1}],
  "algorithms": ["centroid", "dv-hop"],
  "seeds": [1, 2],
  "trials": 2
}
JSON

post() { # post <path> <body-file> <out-file> <headers-file>
  curl -sS -D "$4" -o "$3" -w '%{http_code}' \
    -X POST "http://$addr$1" -H 'Content-Type: application/json' \
    --data-binary @"$2"
}

# Solve: 200 with a result document.
code=$(post /v1/solve "$workdir/spec.json" "$workdir/solve1.json" "$workdir/solve1.h")
if [ "$code" != 200 ]; then
  echo "serve_smoke: solve returned $code:" >&2; cat "$workdir/solve1.json" >&2; exit 1
fi
grep -q '"spec_hash"' "$workdir/solve1.json" || { echo "serve_smoke: solve body missing spec_hash" >&2; exit 1; }
echo "serve_smoke: POST /v1/solve ok"

# Sweep, cold: 200, cache miss.
code=$(post /v1/sweep "$workdir/sweep.json" "$workdir/sweep1.json" "$workdir/sweep1.h")
if [ "$code" != 200 ]; then
  echo "serve_smoke: sweep returned $code:" >&2; cat "$workdir/sweep1.json" >&2; exit 1
fi
grep -qi '^X-Wsnloc-Cache: miss' "$workdir/sweep1.h" || {
  echo "serve_smoke: first sweep not a cache miss:" >&2; cat "$workdir/sweep1.h" >&2; exit 1
}
echo "serve_smoke: POST /v1/sweep ok (miss)"

# Sweep, resubmitted: memo hit with byte-identical body.
code=$(post /v1/sweep "$workdir/sweep.json" "$workdir/sweep2.json" "$workdir/sweep2.h")
[ "$code" = 200 ] || { echo "serve_smoke: sweep resubmit returned $code" >&2; exit 1; }
grep -qi '^X-Wsnloc-Cache: hit' "$workdir/sweep2.h" || {
  echo "serve_smoke: resubmitted sweep not a cache hit:" >&2; cat "$workdir/sweep2.h" >&2; exit 1
}
cmp -s "$workdir/sweep1.json" "$workdir/sweep2.json" || {
  echo "serve_smoke: cached sweep bytes differ from the first response" >&2; exit 1
}
echo "serve_smoke: POST /v1/sweep resubmit ok (hit, byte-identical)"

# Ops plane rides on the same port. Buffer bodies to files: grep -q on a
# live curl pipe exits early and SIGPIPEs curl, which pipefail then reports
# as a failure even when the pattern matched.
curl -sS -o "$workdir/healthz.out" "http://$addr/healthz"
grep -q ok "$workdir/healthz.out" || { echo "serve_smoke: healthz failed" >&2; exit 1; }
curl -sS -o "$workdir/metrics.out" "http://$addr/metrics"
grep -q wsnloc_exec_jobs_total "$workdir/metrics.out" || {
  echo "serve_smoke: /metrics missing exec-pool instruments" >&2; exit 1
}
echo "serve_smoke: ops plane ok"

# SIGTERM drains cleanly.
kill -TERM "$daemon_pid"
for _ in $(seq 1 100); do
  kill -0 "$daemon_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
  echo "serve_smoke: daemon did not exit within 10s of SIGTERM" >&2
  exit 1
fi
wait "$daemon_pid" && rc=0 || rc=$?
if [ "$rc" != 0 ]; then
  echo "serve_smoke: daemon exit code $rc after SIGTERM; stderr:" >&2
  cat "$workdir/stderr.log" >&2
  exit 1
fi
grep -q 'drained cleanly' "$workdir/stdout.log" || {
  echo "serve_smoke: no clean-drain message; stdout:" >&2; cat "$workdir/stdout.log" >&2; exit 1
}
echo "serve_smoke: SIGTERM drained cleanly"
echo "serve_smoke: PASS"
