#!/usr/bin/env bash
# sweep_shard_smoke.sh — end-to-end smoke test of distributed sweeps.
#
# Builds wsnloc-sweep, runs the same sweep document two ways — one single
# process, and three concurrent shard processes over a shared output
# directory followed by -merge — and fails unless the two summary.json
# files are byte-identical. This is the distributed-sweep acceptance
# contract exercised with real processes, real journals, and real leases.
# Run from the repository root: ./scripts/sweep_shard_smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/wsnloc-sweep" ./cmd/wsnloc-sweep

cat > "$workdir/sweep.json" <<'JSON'
{
  "name": "shard-smoke",
  "scenarios": [
    {"N": 35, "Field": 55, "AnchorFrac": 0.2, "Seed": 1},
    {"N": 35, "Field": 55, "AnchorFrac": 0.35, "Seed": 2}
  ],
  "algorithms": ["centroid", "min-max", "dv-hop"],
  "seeds": [1, 2],
  "trials": 2
}
JSON

echo "sweep_shard_smoke: single-process reference run"
"$workdir/wsnloc-sweep" -sweep "$workdir/sweep.json" -out "$workdir/single" -workers 2 > /dev/null

echo "sweep_shard_smoke: 3 concurrent shard processes"
pids=()
for i in 0 1 2; do
  "$workdir/wsnloc-sweep" \
    -sweep "$workdir/sweep.json" -out "$workdir/sharded" \
    -shards 3 -shard-index "$i" -workers 2 > "$workdir/shard.$i.log" &
  pids+=($!)
done
for pid in "${pids[@]}"; do
  if ! wait "$pid"; then
    echo "sweep_shard_smoke: a shard process failed" >&2
    cat "$workdir"/shard.*.log >&2
    exit 1
  fi
done

for i in 0 1 2; do
  if [ ! -f "$workdir/sharded/journal.$i.jsonl" ]; then
    echo "sweep_shard_smoke: shard $i left no journal" >&2
    exit 1
  fi
done
if [ -f "$workdir/sharded/summary.json" ]; then
  echo "sweep_shard_smoke: a shard wrote summary.json before the merge" >&2
  exit 1
fi

echo "sweep_shard_smoke: merging"
"$workdir/wsnloc-sweep" -sweep "$workdir/sweep.json" -out "$workdir/sharded" -merge > /dev/null

if ! cmp "$workdir/single/summary.json" "$workdir/sharded/summary.json"; then
  echo "sweep_shard_smoke: merged summary is NOT byte-identical to the single-process run" >&2
  exit 1
fi
echo "sweep_shard_smoke: OK — merged summary byte-identical to single-process run"
