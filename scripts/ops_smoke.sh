#!/usr/bin/env bash
# ops_smoke.sh — end-to-end smoke test of the live ops plane.
#
# Builds wsnloc-sweep, runs a short sweep with -obs-http on an ephemeral
# port, scrapes /healthz, /metrics, and /buildinfo while (or just after)
# the sweep runs, and fails on any non-200 response or empty payload.
# Run from the repository root: ./scripts/ops_smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
trap 'kill "$sweep_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/wsnloc-sweep" ./cmd/wsnloc-sweep

cat > "$workdir/sweep.json" <<'JSON'
{
  "name": "ops-smoke",
  "scenarios": [{"N": 50, "Field": 70, "AnchorFrac": 0.2, "Seed": 1}],
  "algorithms": ["bncl-grid"],
  "seeds": [1, 2, 3, 4, 5, 6, 7, 8],
  "trials": 4
}
JSON

"$workdir/wsnloc-sweep" \
  -sweep "$workdir/sweep.json" -out "$workdir/out" -workers 1 \
  -obs-http 127.0.0.1:0 2> "$workdir/stderr.log" &
sweep_pid=$!

# The CLI announces the bound address on stderr before the sweep starts.
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's|^obs: serving http://\([^/]*\)/.*|\1|p' "$workdir/stderr.log" | head -n1)
  [ -n "$addr" ] && break
  if ! kill -0 "$sweep_pid" 2>/dev/null; then
    echo "ops_smoke: sweep exited before serving; stderr:" >&2
    cat "$workdir/stderr.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "ops_smoke: ops server address never appeared on stderr" >&2
  cat "$workdir/stderr.log" >&2
  exit 1
fi
echo "ops_smoke: scraping http://$addr/"

scrape() { # scrape <path> <required-substring>
  local path=$1 want=$2 body code
  body=$(curl -sS -w '\n%{http_code}' "http://$addr$path")
  code=${body##*$'\n'}
  body=${body%$'\n'*}
  if [ "$code" != 200 ]; then
    echo "ops_smoke: GET $path returned $code" >&2
    exit 1
  fi
  if [ -z "$body" ]; then
    echo "ops_smoke: GET $path returned an empty body" >&2
    exit 1
  fi
  if ! grep -q "$want" <<< "$body"; then
    echo "ops_smoke: GET $path body missing '$want':" >&2
    echo "$body" >&2
    exit 1
  fi
  echo "ops_smoke: GET $path ok"
}

scrape /healthz   'ok'
scrape /metrics   'wsnloc_'
scrape /buildinfo 'go_version'

wait "$sweep_pid"
echo "ops_smoke: sweep completed cleanly"
echo "ops_smoke: PASS"
