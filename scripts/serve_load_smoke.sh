#!/usr/bin/env bash
# serve_load_smoke.sh — end-to-end smoke test of the high-throughput serving
# path: coalescing, the tiered response memo, and conditional requests.
#
# Boots wsnlocd with a disk memo, fires a short duplicate-heavy open-loop
# run with wsnloc-load, and fails unless (1) every response was 2xx/304,
# (2) the daemon visibly served duplicates from its cache tiers (hits or
# coalesces > 0), and (3) an If-None-Match replay of a solve answers 304
# with an empty body. Finally restarts the daemon over the same memo dir
# and requires the first repeat solve to be a warm disk hit.
# Run from the repository root: ./scripts/serve_load_smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
daemon_pid=""
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/wsnlocd" ./cmd/wsnlocd
go build -o "$workdir/wsnloc-load" ./cmd/wsnloc-load

boot_daemon() { # boot_daemon <log-suffix>
  "$workdir/wsnlocd" -addr 127.0.0.1:0 -workers 2 -memo-dir "$workdir/memo" \
    > "$workdir/stdout.$1.log" 2> "$workdir/stderr.$1.log" &
  daemon_pid=$!
  addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's|^wsnlocd: serving http://\([^/]*\)/.*|\1|p' "$workdir/stderr.$1.log" | head -n1)
    [ -n "$addr" ] && break
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
      echo "serve_load_smoke: daemon exited before serving; stderr:" >&2
      cat "$workdir/stderr.$1.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "serve_load_smoke: daemon address never appeared" >&2; exit 1; }
}

boot_daemon boot1
echo "serve_load_smoke: daemon at http://$addr/"

# Duplicate-heavy open-loop run: short, but hot enough that coalescing and
# the memo must both engage.
"$workdir/wsnloc-load" -url "http://$addr" -endpoint solve \
  -rps 80 -duration 2s -warmup 500ms -dup 0.9 -seed 7 \
  -o "$workdir/load.json"
python3 - "$workdir/load.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))["runs"][0]
errs = r["errors"]
served = r["cache"]["hit"] + r["cache"]["coalesced"]
print(f"serve_load_smoke: accepted={r['accepted']} shed={r['shed']} errors={errs} "
      f"hit={r['cache']['hit']} coalesced={r['cache']['coalesced']} p99={r['latency']['p99_ms']:.1f}ms")
assert errs == 0, f"{errs} failed requests"
assert r["accepted"] > 0, "no accepted responses"
assert served > 0, "duplicate-heavy run never touched the cache tiers"
PY
echo "serve_load_smoke: load run ok"

spec='{"scenario":{"N":40,"Field":60,"AnchorFrac":0.25,"Seed":3},"algorithm":"centroid","seed":7}'

# Conditional request contract: ETag out, If-None-Match in, 304 empty back.
curl -sS -D "$workdir/h1" -o "$workdir/b1" -X POST "http://$addr/v1/solve" \
  -H 'Content-Type: application/json' -d "$spec"
# Header names are case-insensitive (Go emits "Etag").
etag=$(grep -i '^etag:' "$workdir/h1" | head -n1 | cut -d' ' -f2- | tr -d '\r')
[ -n "$etag" ] || { echo "serve_load_smoke: solve response missing ETag" >&2; cat "$workdir/h1" >&2; exit 1; }
code=$(curl -sS -o "$workdir/b304" -w '%{http_code}' -X POST "http://$addr/v1/solve" \
  -H 'Content-Type: application/json' -H "If-None-Match: $etag" -d "$spec")
[ "$code" = 304 ] || { echo "serve_load_smoke: conditional replay returned $code, want 304" >&2; exit 1; }
[ ! -s "$workdir/b304" ] || { echo "serve_load_smoke: 304 carried a body" >&2; exit 1; }
echo "serve_load_smoke: If-None-Match replay ok (304, empty body)"

# Restart over the same memo dir: the repeat solve must be a warm disk hit.
kill -TERM "$daemon_pid"
for _ in $(seq 1 100); do kill -0 "$daemon_pid" 2>/dev/null || break; sleep 0.1; done
boot_daemon boot2
curl -sS -D "$workdir/h2" -o "$workdir/b2" -X POST "http://$addr/v1/solve" \
  -H 'Content-Type: application/json' -d "$spec"
grep -qi '^X-Wsnloc-Cache: hit' "$workdir/h2" || {
  echo "serve_load_smoke: post-restart solve not a cache hit:" >&2; cat "$workdir/h2" >&2; exit 1
}
grep -qi '^X-Wsnloc-Cache-Tier: disk' "$workdir/h2" || {
  echo "serve_load_smoke: post-restart hit not from the disk tier:" >&2; cat "$workdir/h2" >&2; exit 1
}
cmp -s "$workdir/b1" "$workdir/b2" || {
  echo "serve_load_smoke: disk-tier bytes differ from the original response" >&2; exit 1
}
echo "serve_load_smoke: restart warm hit ok (disk tier, byte-identical)"
echo "serve_load_smoke: PASS"
