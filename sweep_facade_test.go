package wsnloc_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"wsnloc"
)

func facadeSweep() wsnloc.SweepSpec {
	return wsnloc.SweepSpec{
		Name:       "facade",
		Scenarios:  []wsnloc.Scenario{{N: 25, Field: 45, Seed: 1}},
		Algorithms: []string{"centroid", "min-max"},
		Seeds:      []uint64{2},
		Trials:     2,
	}
}

func TestRunSweepFacade(t *testing.T) {
	dir := t.TempDir()
	res, err := wsnloc.RunSweep(facadeSweep(), wsnloc.SweepOptions{OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 || res.Executed != 2 {
		t.Fatalf("cells=%d executed=%d", len(res.Cells), res.Executed)
	}
	resumed, err := wsnloc.RunSweep(facadeSweep(), wsnloc.SweepOptions{OutDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Executed != 0 || resumed.Cached != 2 {
		t.Errorf("resume split = executed %d / cached %d", resumed.Executed, resumed.Cached)
	}
	var sum *wsnloc.SweepSummary = resumed.Summary()
	if len(sum.Cells) != 2 || sum.Engine != wsnloc.SweepEngineVersion {
		t.Errorf("summary = %+v", sum)
	}
}

func TestRunSweepCtxCancelFacade(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := wsnloc.RunSweepCtx(ctx, facadeSweep(), wsnloc.SweepOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestParseSweepSpecFacade(t *testing.T) {
	sw, err := wsnloc.ParseSweepSpec([]byte(`{
		"scenarios": [{"N": 30}],
		"algorithms": ["centroid"]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sw.Trials != 1 || len(sw.Seeds) != 1 {
		t.Errorf("defaults not filled: %+v", sw)
	}
	if _, err := wsnloc.ParseSweepSpec([]byte(`{"algorithms":["centroid"]}`)); !errors.Is(err, wsnloc.ErrBadSpec) {
		t.Errorf("missing scenarios: err = %v, want ErrBadSpec", err)
	}
}

func TestSpecHashFacade(t *testing.T) {
	sp := wsnloc.Spec{Algorithm: "centroid", Scenario: wsnloc.Scenario{N: 30, Seed: 1}}
	h1, err := wsnloc.SpecHash(sp)
	if err != nil {
		t.Fatal(err)
	}
	// Filling documented defaults does not move the address; semantics do.
	filled := sp
	filled.Scenario = filled.Scenario.Defaults()
	if h2, _ := wsnloc.SpecHash(filled); h2 != h1 {
		t.Error("default-filled spec hashed differently")
	}
	moved := sp
	moved.Scenario.N = 31
	if h3, _ := wsnloc.SpecHash(moved); h3 == h1 {
		t.Error("changing N did not change the hash")
	}
	if _, err := wsnloc.SpecHash(wsnloc.Spec{Algorithm: "nope"}); err == nil {
		t.Error("invalid spec hashed")
	}
}

// TestRunSweepShardedFacade drives the distributed workflow through the
// public facade: every shard of a 2-way split, then MergeSweep, whose
// summary must match a plain RunSweep of the same document byte-for-byte.
func TestRunSweepShardedFacade(t *testing.T) {
	sw := facadeSweep()
	ref, err := wsnloc.RunSweep(sw, wsnloc.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := ref.Summary().WriteJSON(&want); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	const shards = 2
	total := 0
	for idx := 0; idx < shards; idx++ {
		res, err := wsnloc.RunSweepSharded(context.Background(), sw, shards, idx,
			wsnloc.SweepOptions{OutDir: dir})
		if err != nil {
			t.Fatalf("shard %d: %v", idx, err)
		}
		for _, cr := range res.Cells {
			if got := wsnloc.SweepShardOf(cr.Key, shards); got != idx {
				t.Errorf("shard %d ran cell of shard %d", idx, got)
			}
		}
		total += len(res.Cells)
	}
	if total != len(ref.Cells) {
		t.Fatalf("shards covered %d cells, want %d", total, len(ref.Cells))
	}

	merged, err := wsnloc.MergeSweep(sw, dir)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := merged.Summary().WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("merged facade summary differs from plain RunSweep")
	}
}

// TestMergeSweepIncompleteFacade pins the typed sentinel through the facade.
func TestMergeSweepIncompleteFacade(t *testing.T) {
	if _, err := wsnloc.MergeSweep(facadeSweep(), t.TempDir()); !errors.Is(err, wsnloc.ErrIncompleteSweep) {
		t.Errorf("empty-dir merge: err = %v, want ErrIncompleteSweep", err)
	}
}
