// Package wsnloc is a library for cooperative localization in wireless
// sensor networks using Bayesian networks with pre-knowledge, reproducing
// Lo, Wu & Chung, "Cooperative Localization with Pre-Knowledge Using
// Bayesian Network for Wireless Sensor Networks" (ICPP Workshops 2007).
//
// The package is a facade over the internal implementation:
//
//   - Scenario describes a simulated network (size, region shape, radio and
//     ranging models, anchors) and Build materializes it into a Problem.
//   - BNCLGrid / BNCLParticle construct the paper's algorithm; Baseline
//     constructs any of the comparison algorithms (DV-Hop, MDS-MAP, …).
//   - Localize runs an algorithm; Evaluate scores the result.
//
// Quickstart:
//
//	p, _ := wsnloc.Scenario{N: 150, Seed: 1}.Build()
//	res, _ := wsnloc.Localize(p, wsnloc.BNCLGrid(wsnloc.AllPreKnowledge()), 42)
//	fmt.Println(wsnloc.Evaluate(p, res).MeanErr())
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// regenerated evaluation.
package wsnloc

import (
	"context"
	"io"

	"wsnloc/internal/alg"
	"wsnloc/internal/core"
	"wsnloc/internal/crlb"
	"wsnloc/internal/expt"
	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/metrics"
	"wsnloc/internal/obs"
	"wsnloc/internal/radio"
	"wsnloc/internal/rng"
	"wsnloc/internal/serve"
	"wsnloc/internal/sweep"
	"wsnloc/internal/topology"
	"wsnloc/internal/wsnerr"
)

// Sentinel errors of the public API. Every failure a caller can provoke —
// an invalid scenario, a bad configuration, an unknown algorithm name, a
// degenerate topology — wraps exactly one of these, so errors.Is classifies
// it without string matching. Context cancellation surfaces as the standard
// context.Canceled / context.DeadlineExceeded.
var (
	// ErrBadScenario reports an invalid Scenario field (negative node count,
	// anchor fraction outside [0,1], non-positive radio range or field size,
	// unknown shape/propagation/ranging name).
	ErrBadScenario = wsnerr.ErrBadScenario
	// ErrBadConfig reports an invalid algorithm or simulator configuration.
	ErrBadConfig = wsnerr.ErrBadConfig
	// ErrBadProblem reports an inconsistent Problem passed to an algorithm.
	ErrBadProblem = wsnerr.ErrBadProblem
	// ErrUnknownAlgorithm reports a name absent from the algorithm registry.
	ErrUnknownAlgorithm = wsnerr.ErrUnknownAlgorithm
	// ErrDisconnected reports a topology too degenerate for the requested
	// quantity (e.g. a singular CRLB information matrix).
	ErrDisconnected = wsnerr.ErrDisconnected
	// ErrBadSpec reports an invalid run Spec.
	ErrBadSpec = wsnerr.ErrBadSpec
)

// Vec2 is a position in the 2-D deployment plane (meters).
type Vec2 = mathx.Vec2

// V2 constructs a Vec2.
func V2(x, y float64) Vec2 { return mathx.V2(x, y) }

// Problem is a materialized localization problem: deployment ground truth,
// the measured connectivity graph, and the radio models.
type Problem = core.Problem

// Result is a localization outcome (estimates, coverage, traffic stats).
type Result = core.Result

// Algorithm is any localization method runnable by Localize.
type Algorithm = core.Algorithm

// PreKnowledge selects the prior information BNCL exploits.
type PreKnowledge = core.PreKnowledge

// BNCLConfig is the full tuning surface of the BNCL algorithm.
type BNCLConfig = core.Config

// Scenario compactly describes a simulated network; its Build method
// materializes a Problem. The zero value (plus a Seed) is the library's
// default configuration: 150 nodes, 100×100 m, R = 15 m, 10% anchors,
// unit-disk connectivity, 10% Gaussian TOA ranging noise.
type Scenario = expt.Scenario

// Eval is a scored localization outcome; see its methods for error,
// coverage and traffic metrics.
type Eval = metrics.Eval

// AllPreKnowledge enables every pre-knowledge term (deployment region, hop
// annuli, negative evidence).
func AllPreKnowledge() PreKnowledge { return core.AllPreKnowledge() }

// NoPreKnowledge disables every pre-knowledge term (the ablation setting).
func NoPreKnowledge() PreKnowledge { return core.NoPreKnowledge() }

// BNCLGrid returns the grid-belief variant of the paper's algorithm.
func BNCLGrid(pk PreKnowledge) Algorithm { return core.NewGrid(pk) }

// BNCLParticle returns the particle-belief (nonparametric BP) variant.
func BNCLParticle(pk PreKnowledge) Algorithm { return core.NewParticle(pk) }

// BNCLWithConfig returns a fully tuned BNCL instance.
func BNCLWithConfig(cfg BNCLConfig) Algorithm { return &core.BNCL{Cfg: cfg} }

// AlgOpts tunes construction of a registry algorithm (grid resolution,
// particle count, BP rounds, pre-knowledge, workers). The zero value means
// "library defaults"; it round-trips through JSON as part of Spec.
type AlgOpts = alg.Opts

// Baseline returns a comparison algorithm by name: centroid, w-centroid,
// min-max, dv-hop, dv-distance, ls-multilat, mds-map (plus the bncl-*
// names). Algorithms lists them. Equivalent to NewAlgorithm(name, AlgOpts{}).
func Baseline(name string) (Algorithm, error) {
	return NewAlgorithm(name, AlgOpts{})
}

// NewAlgorithm builds any registered algorithm by name with the given
// options. Unknown names wrap ErrUnknownAlgorithm; invalid options wrap
// ErrBadConfig. Algorithms lists the accepted names.
func NewAlgorithm(name string, opts AlgOpts) (Algorithm, error) {
	return alg.New(name, opts)
}

// Algorithms lists every registered algorithm name, sorted.
func Algorithms() []string { return alg.Names() }

// Localize runs the algorithm on the problem with a deterministic seed.
func Localize(p *Problem, alg Algorithm, seed uint64) (*Result, error) {
	return alg.Localize(p, rng.New(seed))
}

// LocalizeCtx is Localize bounded by a context: a cancel or deadline aborts
// the run at message-passing-round granularity (never mid-round, so an
// uncanceled run is bit-identical to Localize), drains the simulator's
// worker pool, and returns ctx's error.
func LocalizeCtx(ctx context.Context, a Algorithm, p *Problem, seed uint64) (*Result, error) {
	return core.LocalizeContext(ctx, a, p, rng.New(seed))
}

// Observability (see internal/obs for the event schema).

// Tracer consumes structured trace events from instrumented algorithms:
// per-round BNCL convergence (residual, ESS, traffic), per-phase wall time,
// and per-run timings. All provided tracers are safe for concurrent use.
type Tracer = obs.Tracer

// TraceEvent is one structured trace record.
type TraceEvent = obs.Event

// NopTracer returns the no-op tracer (the default: near-zero overhead).
func NopTracer() Tracer { return obs.Nop() }

// NewJSONLTracer returns a tracer writing one JSON object per event to w.
func NewJSONLTracer(w io.Writer) *obs.JSONL { return obs.NewJSONL(w) }

// NewMemoryTracer returns a tracer buffering events in memory (for tests
// and programmatic inspection).
func NewMemoryTracer() *obs.Memory { return obs.NewMemory() }

// NewLogTracer returns a tracer printing human-readable event lines to w.
func NewLogTracer(w io.Writer) *obs.Log { return obs.NewLog(w) }

// MultiTracer fans events out to every enabled tracer.
func MultiTracer(tracers ...Tracer) Tracer { return obs.Multi(tracers...) }

// WithTracer attaches a tracer to an algorithm: every Localize emits an
// "algorithm" timing event, and instrumented algorithms (BNCL, DV-Hop,
// DV-Distance, MDS-MAP) additionally emit their per-round / per-phase
// events. A nil or no-op tracer returns alg unchanged.
func WithTracer(alg Algorithm, tr Tracer) Algorithm { return core.Traced(alg, tr) }

// LocalizeTraced is Localize with a tracer attached for the one call.
func LocalizeTraced(p *Problem, alg Algorithm, seed uint64, tr Tracer) (*Result, error) {
	return core.Traced(alg, tr).Localize(p, rng.New(seed))
}

// MetricsRegistry is a lightweight counters/gauges/histograms registry with
// Prometheus-text and JSON exposition.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewMetricsSink returns a tracer that aggregates trace events into reg
// (attach alongside a JSONL tracer via MultiTracer to get both views).
func NewMetricsSink(reg *MetricsRegistry) Tracer { return obs.NewMetricsSink(reg) }

// Evaluate scores a result against the problem's ground truth.
func Evaluate(p *Problem, r *Result) Eval { return metrics.Evaluate(p, r) }

// MergeEvals pools evaluations across Monte-Carlo trials.
func MergeEvals(evals ...Eval) Eval { return metrics.Merge(evals...) }

// RunTrials runs `trials` Monte-Carlo repetitions of the scenario (seeds
// derived from s.Seed) and returns the pooled evaluation.
func RunTrials(s Scenario, alg Algorithm, trials int) (Eval, error) {
	return expt.RunTrials(s, alg, trials)
}

// RunTrialsCtx is RunTrials bounded by a context: a cancel or deadline stops
// handing out trials, aborts the in-flight ones at round granularity, joins
// the worker pool, and returns ctx's error.
func RunTrialsCtx(ctx context.Context, s Scenario, alg Algorithm, trials int) (Eval, error) {
	return expt.RunTrialsCtx(ctx, s, alg, trials)
}

// RunTrialsTraced is RunTrials over a worker pool with a tracer receiving
// one "trial.start"/"trial.done" span per repetition (plus the algorithms'
// own events, parented to their trial spans).
// newAlg must return a fresh algorithm per call when workers > 1; workers
// ≤ 1 runs the trials sequentially.
func RunTrialsTraced(s Scenario, newAlg func() Algorithm, trials, workers int, tr Tracer) (Eval, error) {
	return expt.RunTrialsOpts(context.Background(), s, newAlg, trials, expt.RunOpts{Workers: workers, Tracer: tr})
}

// Run specs: a Spec is the complete, versioned description of one run —
// scenario, algorithm name, tuning options, seed — and round-trips through
// JSON, so runs can be stored, diffed, and replayed byte-identically.

// Spec fully describes one localization run as a JSON-round-trippable job
// unit. The zero value of every omitted field means "library default".
type Spec = alg.Spec

// SpecVersion is the current Spec schema version (the Version field).
const SpecVersion = alg.SpecVersion

// ParseSpec decodes and validates a JSON Spec. Invalid documents wrap
// ErrBadSpec (or the more specific ErrBadScenario / ErrBadConfig /
// ErrUnknownAlgorithm).
func ParseSpec(data []byte) (Spec, error) { return alg.ParseSpec(data) }

// RunSpec builds the spec's scenario and algorithm and runs one localization
// bounded by ctx, returning the materialized problem and the result.
func RunSpec(ctx context.Context, sp Spec) (*Problem, *Result, error) {
	return sp.Run(ctx)
}

// SpecHash returns the content address of a spec: the hex SHA-256 of its
// canonical JSON (defaults filled, JSON key order irrelevant, wall-clock
// knobs like Workers stripped). Equal hashes mean "same computation, same
// result bytes" — the cache key of the sweep engine. Invalid specs wrap
// ErrBadSpec.
func SpecHash(sp Spec) (string, error) { return sp.Hash() }

// Sweeps: a SweepSpec declares an experiment grid (scenarios × algorithms ×
// option sets × seeds); the engine executes its cells on a bounded worker
// pool and persists each cell's evaluation to a content-addressed cache, so
// interrupted or repeated sweeps resume without recomputing completed cells.

// SweepSpec declares one experiment grid. See internal/sweep.Spec.
type SweepSpec = sweep.Spec

// SweepOptions tunes a sweep execution: output directory (cache + journal),
// worker count, resume behavior, tracer.
type SweepOptions = sweep.Options

// SweepResult is a completed sweep: every cell's evaluation in
// deterministic order. Its Summary method merges the paper-style curves.
type SweepResult = sweep.Result

// SweepSummary is the merged outcome of a sweep: per-cell statistics plus
// per-algorithm accuracy curves along the anchor-fraction and noise axes.
type SweepSummary = sweep.Summary

// SweepEngineVersion is baked into every sweep cache key; bumping it
// invalidates all cached cell results at once.
const SweepEngineVersion = sweep.EngineVersion

// ParseSweepSpec decodes and validates a JSON sweep document. Invalid
// documents wrap ErrBadSpec.
func ParseSweepSpec(data []byte) (SweepSpec, error) { return sweep.ParseSpec(data) }

// RunSweep executes the sweep with a background context. See RunSweepCtx.
func RunSweep(sw SweepSpec, opts SweepOptions) (*SweepResult, error) {
	return sweep.Run(sw, opts)
}

// RunSweepCtx expands the sweep into cells and executes them bounded by
// ctx. Every finished cell is cached and journaled before the next starts,
// so a cancel loses at most the in-flight cells; re-running with
// opts.Resume against the same OutDir re-runs zero completed cells.
func RunSweepCtx(ctx context.Context, sw SweepSpec, opts SweepOptions) (*SweepResult, error) {
	return sweep.RunCtx(ctx, sw, opts)
}

// Distributed sweeps: the grid partitions deterministically into shards by
// cell content address, each shard protected by a crash-safe lease in the
// shared output directory, and the shards' journals and cache merge back
// into the full result — byte-identical to a single-process run.

var (
	// ErrShardHeld reports a sharded sweep whose shard lease a live worker
	// already holds; retry later or run a different shard.
	ErrShardHeld = sweep.ErrShardHeld
	// ErrBadSweepJournal reports a shard journal that contradicts the sweep
	// grid or another journal — a journal from a different sweep document,
	// or corruption that survived a checksum.
	ErrBadSweepJournal = sweep.ErrBadJournal
	// ErrIncompleteSweep reports a merge over a grid with unresolved cells:
	// some shard has not run (or finished) yet.
	ErrIncompleteSweep = sweep.ErrIncomplete
)

// SweepShardOf returns which of shards a cell key belongs to: a pure
// function of the cell's content address, so any worker computes the same
// disjoint, covering partition.
func SweepShardOf(key string, shards int) int { return sweep.ShardOf(key, shards) }

// RunSweepSharded executes one shard of an N-way split of the sweep against
// opts.OutDir (required): only the cells whose content address maps to
// shardIndex run, under a crash-safe lease other workers respect. Run every
// shard — concurrently, from any mix of processes or hosts sharing the
// directory — then MergeSweep. A worker killed mid-shard is rerun with
// opts.Resume; completed cells are not recomputed.
func RunSweepSharded(ctx context.Context, sw SweepSpec, shards, shardIndex int, opts SweepOptions) (*SweepResult, error) {
	opts.Shards = shards
	opts.ShardIndex = shardIndex
	return sweep.RunCtx(ctx, sw, opts)
}

// MergeSweep folds the shard journals and content-addressed caches of one
// or more sweep output directories back into the full result, whose Summary
// is byte-identical to a single-process run of the same document. Merging
// never executes cells: unresolved cells wrap ErrIncompleteSweep, and
// inconsistent journals wrap ErrBadSweepJournal.
func MergeSweep(sw SweepSpec, outDirs ...string) (*SweepResult, error) {
	return sweep.Merge(sw, outDirs...)
}

// CRLB is the Cramér-Rao lower bound of a scenario: the best RMSE any
// unbiased ranging-only estimator can achieve on its geometry.
type CRLB = crlb.Bound

// ComputeCRLB evaluates the bound for a problem (see internal/crlb).
func ComputeCRLB(p *Problem) (*CRLB, error) { return crlb.Compute(p) }

// Mobile-target tracking extension (sequential Bayesian filtering).

// Tracker is a grid-based Bayesian filter for a mobile node, sharing BNCL's
// measurement and pre-knowledge models.
type Tracker = core.Tracker

// RangeObs is one ranging observation consumed by Tracker.Step.
type RangeObs = core.RangeObs

// Region is a subset of the plane used for deployment maps and tracking
// priors.
type Region = geom.Region

// Rect is an axis-aligned rectangle region.
type Rect = geom.Rect

// NewRect builds a rectangle region from two corners.
func NewRect(x0, y0, x1, y1 float64) Rect { return geom.NewRect(x0, y0, x1, y1) }

// Ranger is a ranging measurement model (see the radio package models).
type Ranger = radio.Ranger

// TOARanger returns a Gaussian time-of-arrival ranging model with standard
// deviation sigmaFrac·r.
func TOARanger(r, sigmaFrac float64) Ranger {
	return radio.TOAGaussian{R: r, SigmaFrac: sigmaFrac}
}

// NewTracker builds a mobile-node tracker over region (nil for no map
// prior) discretized at gridN×gridN over bounds, with per-step displacement
// bound maxStep.
func NewTracker(region Region, bounds Rect, gridN int, maxStep float64, ranger Ranger) (*Tracker, error) {
	return core.NewTracker(region, bounds, gridN, maxStep, ranger)
}

// EKFTracker is the extended-Kalman-filter tracking baseline: cheaper than
// Tracker but unimodal and unable to use map pre-knowledge.
type EKFTracker = core.EKFTracker

// NewEKFTracker starts an EKF at start with the given initial uncertainty,
// per-step motion bound, and ranging-noise function.
func NewEKFTracker(start Vec2, startStd, maxStep float64, sigmaOf func(float64) float64) (*EKFTracker, error) {
	return core.NewEKFTracker(start, startStd, maxStep, sigmaOf)
}

// Stream is a deterministic random stream (consumed by Ranger.Measure and
// the mobility generators).
type Stream = rng.Stream

// NewStream returns a seeded deterministic random stream.
func NewStream(seed uint64) *Stream { return rng.New(seed) }

// RandomWaypoint generates random-waypoint mobility traces for the tracking
// extension.
type RandomWaypoint = topology.RandomWaypoint

// Service plane: run localization as a long-running daemon (wsnlocd) that
// accepts Spec / SweepSpec JSON over HTTP, executes on one shared bounded
// worker pool (backpressure via 429 when the admission queue is full), and
// memoizes results content-addressed by canonical spec hash — identical
// specs return byte-identical cached bytes instantly.

// ServiceConfig tunes an embedded localization service: execution-pool
// size, admission-queue depth, body/time limits, cache directory, the
// response memo's disk tier (MemoDir — exact response bytes survive
// restarts), slow-client protections (ReadHeaderTimeout and friends,
// applied via ServiceConfig.HTTPServer), and observability wiring.
// Identical in-flight requests coalesce onto one execution regardless of
// configuration.
type ServiceConfig = serve.Config

// Service is an embeddable localization service: an http.Handler over the
// /v1 API plus the execution plane behind it. Mount its Handler in any mux;
// call Shutdown to drain gracefully.
type Service = serve.Server

// NewService builds a localization service and starts its execution pool.
func NewService(cfg ServiceConfig) (*Service, error) { return serve.New(cfg) }

// SolveResponse is the POST /v1/solve result document: spec hash, echoed
// normalized spec, evaluation statistics, and per-node estimates.
type SolveResponse = serve.SolveResponse

// ServiceClient is a typed client for a running wsnlocd daemon.
type ServiceClient = serve.Client

// ErrServiceBusy reports a 429 from the daemon: the admission queue was
// full and the request was not accepted. Retry after serve.RetryAfter(err).
var ErrServiceBusy = serve.ErrBusy

// NewServiceClient returns a client for the daemon at base
// (e.g. "http://127.0.0.1:8080").
func NewServiceClient(base string) *ServiceClient { return serve.NewClient(base) }

// SubmitSpec submits one Spec to a wsnlocd daemon at base and blocks for
// the result. The Cached field of the response reports whether the daemon
// answered from its cross-request memo.
func SubmitSpec(ctx context.Context, base string, sp Spec) (*serve.SolveResult, error) {
	return serve.NewClient(base).Solve(ctx, sp)
}
