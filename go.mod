module wsnloc

go 1.22
