package wsnloc_test

import (
	"testing"

	"wsnloc"
)

func TestQuickstartFlow(t *testing.T) {
	p, err := wsnloc.Scenario{N: 80, Seed: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := wsnloc.Localize(p, wsnloc.BNCLGrid(wsnloc.AllPreKnowledge()), 42)
	if err != nil {
		t.Fatal(err)
	}
	e := wsnloc.Evaluate(p, res)
	if e.Coverage() < 0.8 {
		t.Errorf("coverage %.2f", e.Coverage())
	}
	if e.NormMean() > 0.6 {
		t.Errorf("normalized error %.3f", e.NormMean())
	}
}

func TestBaselineLookup(t *testing.T) {
	names := wsnloc.Algorithms()
	if len(names) == 0 {
		t.Fatal("no algorithms registered")
	}
	for _, n := range names {
		if _, err := wsnloc.Baseline(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := wsnloc.Baseline("flux-capacitor"); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestRunTrialsFacade(t *testing.T) {
	alg, err := wsnloc.Baseline("dv-hop")
	if err != nil {
		t.Fatal(err)
	}
	e, err := wsnloc.RunTrials(wsnloc.Scenario{N: 60, Seed: 5}, alg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e.Trials != 2 {
		t.Errorf("trials = %d", e.Trials)
	}
	merged := wsnloc.MergeEvals(e, e)
	if merged.Trials != 4 {
		t.Errorf("merged trials = %d", merged.Trials)
	}
}

func TestParticleVariantFacade(t *testing.T) {
	p, err := wsnloc.Scenario{N: 60, Field: 65, Seed: 2}.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := wsnloc.Localize(p, wsnloc.BNCLParticle(wsnloc.AllPreKnowledge()), 7)
	if err != nil {
		t.Fatal(err)
	}
	if wsnloc.Evaluate(p, res).Coverage() < 0.7 {
		t.Error("particle variant coverage too low")
	}
}

func TestBNCLWithConfigFacade(t *testing.T) {
	cfg := wsnloc.BNCLConfig{GridNX: 25, GridNY: 25, BPRounds: 6, PK: wsnloc.AllPreKnowledge()}
	p, err := wsnloc.Scenario{N: 60, Seed: 3}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wsnloc.Localize(p, wsnloc.BNCLWithConfig(cfg), 9); err != nil {
		t.Fatal(err)
	}
}

func TestV2Helper(t *testing.T) {
	v := wsnloc.V2(3, 4)
	if v.Norm() != 5 {
		t.Error("V2/Norm broken through facade")
	}
}
