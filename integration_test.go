package wsnloc_test

// Cross-module integration tests: properties that only hold when the
// substrates, the algorithm, and the metrics cooperate correctly.

import (
	"testing"

	"wsnloc"
)

// TestConfidenceCalibration checks that BNCL's reported per-node confidence
// (posterior spread) is meaningful: actual errors should rarely exceed a
// small multiple of it. A mis-wired posterior (overconfident beliefs) would
// fail this immediately.
func TestConfidenceCalibration(t *testing.T) {
	p, err := wsnloc.Scenario{N: 120, Field: 90, Seed: 17}.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := wsnloc.Localize(p, wsnloc.BNCLGrid(wsnloc.AllPreKnowledge()), 3)
	if err != nil {
		t.Fatal(err)
	}
	within, total := 0, 0
	for _, id := range p.Deploy.UnknownIDs() {
		if !res.Localized[id] || res.Confidence[id] <= 0 {
			continue
		}
		total++
		errM := res.Est[id].Dist(p.Deploy.Pos[id])
		if errM <= 3*res.Confidence[id]+0.5*p.Graph.AvgDegree() {
			within++
		}
	}
	if total < 50 {
		t.Fatalf("only %d nodes with confidence", total)
	}
	if frac := float64(within) / float64(total); frac < 0.8 {
		t.Errorf("only %.0f%% of errors within 3x confidence — posterior overconfident", 100*frac)
	}
}

// TestCRLBOrdersScenarios checks the bound moves the right way with
// measurement quality: more noise → looser bound, and the facade agrees
// with direct computation.
func TestCRLBOrdersScenarios(t *testing.T) {
	build := func(noise float64) *wsnloc.Problem {
		p, err := wsnloc.Scenario{N: 100, Field: 85, NoiseFrac: noise, AnchorFrac: 0.25, Seed: 4}.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	bLow, err := wsnloc.ComputeCRLB(build(0.05))
	if err != nil {
		t.Fatal(err)
	}
	bHigh, err := wsnloc.ComputeCRLB(build(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if bLow.MeanRMSE <= 0 || bHigh.MeanRMSE <= bLow.MeanRMSE {
		t.Errorf("bounds not ordered by noise: %.3f vs %.3f", bLow.MeanRMSE, bHigh.MeanRMSE)
	}
	// The 5x noise ratio should appear roughly linearly in the bound.
	ratio := bHigh.MeanRMSE / bLow.MeanRMSE
	if ratio < 3 || ratio > 7 {
		t.Errorf("bound ratio %.2f, want ~5", ratio)
	}
}

// TestNoEstimatorBeatsBoundBadly: at dense anchors with a well-conditioned
// geometry, the best algorithms should sit within a small factor of the
// CRLB — a sanity check that the bound and the metrics share units.
func TestNoEstimatorBeatsBoundBadly(t *testing.T) {
	p, err := wsnloc.Scenario{N: 120, Field: 90, AnchorFrac: 0.3, NoiseFrac: 0.05, Seed: 6}.Build()
	if err != nil {
		t.Fatal(err)
	}
	bound, err := wsnloc.ComputeCRLB(p)
	if err != nil {
		t.Fatal(err)
	}
	if bound.Localizable < 50 {
		t.Fatalf("only %d localizable", bound.Localizable)
	}
	alg, _ := wsnloc.Baseline("ls-multilat")
	res, err := wsnloc.Localize(p, alg, 8)
	if err != nil {
		t.Fatal(err)
	}
	e := wsnloc.Evaluate(p, res)
	// LS at 30% anchors / 5% noise should land within ~5x of the bound
	// (it is near-efficient on its covered subset).
	if e.RMSE() > 5*bound.MeanRMSE {
		t.Errorf("LS RMSE %.2f vs bound %.2f — metrics or bound inconsistent", e.RMSE(), bound.MeanRMSE)
	}
	// And no algorithm's per-node pool may average below half the bound
	// unless it uses priors — LS does not.
	if e.RMSE() < 0.5*bound.MeanRMSE {
		t.Errorf("prior-free LS beat the CRLB: %.2f vs %.2f", e.RMSE(), bound.MeanRMSE)
	}
}

// TestDistributedMatchesTrafficInvariants: messages received never exceed
// messages sent times max degree, and energy grows with bytes.
func TestDistributedMatchesTrafficInvariants(t *testing.T) {
	p, err := wsnloc.Scenario{N: 80, Field: 75, Seed: 9}.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := wsnloc.Localize(p, wsnloc.BNCLGrid(wsnloc.AllPreKnowledge()), 5)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	maxDeg := 0
	for i := 0; i < p.Deploy.N(); i++ {
		if d := p.Graph.Degree(i); d > maxDeg {
			maxDeg = d
		}
	}
	if s.MessagesRecvd > s.MessagesSent*maxDeg {
		t.Errorf("recvd %d > sent %d x maxdeg %d", s.MessagesRecvd, s.MessagesSent, maxDeg)
	}
	if s.BytesSent <= 0 || s.EnergyMicroJ <= 0 {
		t.Error("traffic accounting empty")
	}
	perNodeSum := 0
	for _, tx := range s.PerNodeTx {
		perNodeSum += tx
	}
	if perNodeSum != s.MessagesSent {
		t.Errorf("per-node tx sum %d != total %d", perNodeSum, s.MessagesSent)
	}
}

// TestSeedIndependenceOfSubsystems: changing the algorithm seed must not
// change the topology, and vice versa.
func TestSeedIndependenceOfSubsystems(t *testing.T) {
	s := wsnloc.Scenario{N: 60, Field: 70, Seed: 11}
	p1, _ := s.Build()
	p2, _ := s.Build()
	for i := range p1.Deploy.Pos {
		if p1.Deploy.Pos[i] != p2.Deploy.Pos[i] {
			t.Fatal("same scenario seed, different topology")
		}
	}
	// Grid-mode BNCL is deterministic given the topology (it draws no
	// randomness when loss is zero), so use the particle variant to verify
	// the algorithm seed actually reaches the algorithm.
	alg := wsnloc.BNCLParticle(wsnloc.AllPreKnowledge())
	rA, _ := wsnloc.Localize(p1, alg, 1)
	rB, _ := wsnloc.Localize(p2, alg, 2)
	diff := false
	for i := range rA.Est {
		if rA.Est[i] != rB.Est[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different algorithm seeds produced identical particle runs (suspicious)")
	}
	// But accuracy must be in the same ballpark.
	eA, eB := wsnloc.Evaluate(p1, rA), wsnloc.Evaluate(p2, rB)
	if eA.Coverage() != eB.Coverage() {
		// Coverage depends on flood reach, which is seed-independent
		// without loss.
		t.Errorf("coverage changed with algorithm seed: %v vs %v", eA.Coverage(), eB.Coverage())
	}
}

// TestAllAlgorithmsAllScenarios is the compatibility sweep: every registered
// algorithm must run without error on every scenario variant and produce
// finite estimates for whatever it localizes.
func TestAllAlgorithmsAllScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("compatibility sweep is slow")
	}
	scenarios := []wsnloc.Scenario{
		{N: 50, Field: 60, Seed: 1},
		{N: 50, Field: 60, Shape: "c", R: 20, Seed: 2},
		{N: 50, Field: 60, Prop: "shadow", Seed: 3},
		{N: 50, Field: 60, Ranger: "rssi", Seed: 4},
		{N: 50, Field: 60, Ranger: "nlos", Loss: 0.1, Seed: 5},
		{N: 50, Field: 60, Ranger: "hop", Jitter: 0.2, Seed: 6},
		{N: 50, Field: 60, Gen: "clusters", Anchors: "perimeter", Seed: 7},
	}
	for _, name := range wsnloc.Algorithms() {
		alg, err := wsnloc.Baseline(name)
		if err != nil {
			t.Fatal(err)
		}
		for si, s := range scenarios {
			p, err := s.Build()
			if err != nil {
				t.Fatalf("scenario %d: %v", si, err)
			}
			res, err := wsnloc.Localize(p, alg, 9)
			if err != nil {
				t.Fatalf("%s on scenario %d: %v", name, si, err)
			}
			for i, est := range res.Est {
				if res.Localized[i] && !est.IsFinite() {
					t.Fatalf("%s scenario %d: non-finite estimate for node %d", name, si, i)
				}
			}
		}
	}
}

// TestNoMirroredClusters is the regression test for a bug found during the
// evaluation: peripheral clusters with no anchor neighbors could coherently
// lock into a mirrored mode when the annulus priors only used the NEAREST
// anchors (far anchors carry the lower bounds that break the symmetry; see
// PreKnowledge.MaxAnnuliAnchors). A mirrored cluster shows up as localized
// nodes with errors comparable to the field diagonal.
func TestNoMirroredClusters(t *testing.T) {
	for _, seed := range []uint64{1, 1 + 0x9E37, 1 + 2*0x9E37} {
		s := wsnloc.Scenario{N: 120, Field: 89, Seed: seed}
		p, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := wsnloc.Localize(p, wsnloc.BNCLGrid(wsnloc.AllPreKnowledge()), seed^0xBEEF)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range p.Deploy.UnknownIDs() {
			if !res.Localized[id] {
				continue
			}
			if e := res.Est[id].Dist(p.Deploy.Pos[id]); e > 0.5*s.Field {
				t.Errorf("seed %d node %d: error %.1f m (mirror-mode lock-in)", seed, id, e)
			}
		}
	}
}
