// Command benchjson converts `go test -bench` text output into a stable JSON
// document, so CI can archive benchmark numbers (ns/op, B/op, allocs/op)
// without scraping free-form text downstream.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' ./internal/... | benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. Metrics maps a unit (e.g. "ns/op",
// "allocs/op") to its value.
type Result struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the top-level document: environment header lines plus results.
type Doc struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Results: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if ok {
				res.Pkg = pkg
				doc.Results = append(doc.Results, res)
			}
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses "BenchmarkName-P  N  v1 u1  v2 u2 ..." lines; it
// reports !ok for anything that doesn't fit (e.g. "BenchmarkX ... FAIL").
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
