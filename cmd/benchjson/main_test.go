package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: wsnloc/internal/bayes
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBPRound-4         	    2847	    421776 ns/op	       1 B/op	       0 allocs/op
BenchmarkBPRoundAlloc-4    	    2634	    455315 ns/op	  116672 B/op	      31 allocs/op
PASS
ok  	wsnloc/internal/bayes	3.412s
pkg: wsnloc/internal/core
BenchmarkNetworkRun/workers=4-4 	       3	3200586023 ns/op
PASS
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || !strings.Contains(doc.CPU, "Xeon") {
		t.Errorf("header = %q/%q/%q", doc.Goos, doc.Goarch, doc.CPU)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(doc.Results))
	}
	r := doc.Results[0]
	if r.Pkg != "wsnloc/internal/bayes" || r.Name != "BenchmarkBPRound-4" || r.Iterations != 2847 {
		t.Errorf("first result = %+v", r)
	}
	if r.Metrics["ns/op"] != 421776 || r.Metrics["allocs/op"] != 0 || r.Metrics["B/op"] != 1 {
		t.Errorf("metrics = %v", r.Metrics)
	}
	last := doc.Results[2]
	if last.Pkg != "wsnloc/internal/core" || last.Name != "BenchmarkNetworkRun/workers=4-4" {
		t.Errorf("pkg attribution wrong: %+v", last)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken-4",
		"BenchmarkBroken-4 notanint 12 ns/op",
		"BenchmarkBroken-4 10 twelve ns/op",
		"BenchmarkOdd-4 10 12 ns/op 5", // trailing value without a unit
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("accepted malformed line %q", line)
		}
	}
}
