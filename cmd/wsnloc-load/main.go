// Command wsnloc-load is the open-loop load harness for wsnlocd: it fires
// solve or sweep requests at a target rate — arrivals are scheduled by a
// clock, not by completions, so a slow server cannot hide its queueing by
// slowing the generator down — and reports latency percentiles, achieved
// throughput, and the daemon's cache verdicts as JSON.
//
// The -dup knob sets the probability that a request reuses one shared hot
// spec instead of a unique one. Duplicate-heavy traffic is where the
// daemon's coalescing and memo tiers earn their keep: the benchmark
// contract (BENCH_serve.json) is that dup-heavy p99 beats dup-free p99 by a
// wide factor because duplicates never reach the execution pool.
//
// Usage:
//
//	wsnloc-load -url http://127.0.0.1:8080 -endpoint solve -rps 200 -dup 0.9 -duration 5s
//	wsnloc-load -url http://127.0.0.1:8080 -matrix -o BENCH_serve.json
//	wsnloc-load -url ... -matrix -check-dup-speedup 5   # exit 1 unless dup-heavy p99 is ≥5× better
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// Percentiles is the latency summary over accepted (2xx/304) responses.
type Percentiles struct {
	P50  float64 `json:"p50_ms"`
	P95  float64 `json:"p95_ms"`
	P99  float64 `json:"p99_ms"`
	Mean float64 `json:"mean_ms"`
	Max  float64 `json:"max_ms"`
}

// CacheStats counts the daemon's per-response cache verdicts.
type CacheStats struct {
	Miss      int `json:"miss"`
	Hit       int `json:"hit"`
	Coalesced int `json:"coalesced"`
	// HitRate is (hit+coalesced)/accepted — the fraction of accepted
	// responses the daemon served without a fresh execution.
	HitRate float64 `json:"hit_rate"`
}

// Run is one measured load run.
type Run struct {
	Endpoint    string      `json:"endpoint"`
	DupRatio    float64     `json:"dup_ratio"`
	TargetRPS   float64     `json:"target_rps"`
	DurationSec float64     `json:"duration_sec"`
	Sent        int         `json:"sent"`
	Accepted    int         `json:"accepted"` // 2xx + 304
	NotModified int         `json:"not_modified"`
	Shed        int         `json:"shed"` // 429: the daemon's backpressure
	Errors      int         `json:"errors"`
	Skipped     int         `json:"skipped"` // client-side concurrency cap reached
	AchievedRPS float64     `json:"achieved_rps"`
	Latency     Percentiles `json:"latency"`
	Cache       CacheStats  `json:"cache"`
}

// Doc is the top-level output document; with -matrix it is what CI archives
// as BENCH_serve.json.
type Doc struct {
	Tool string `json:"tool"`
	URL  string `json:"url"`
	Runs []Run  `json:"runs"`
	// DupSpeedupP99 maps endpoint → dup-free p99 / dup-heavy p99 (only in
	// -matrix mode). >1 means duplicate-heavy traffic is faster.
	DupSpeedupP99 map[string]float64 `json:"dup_speedup_p99,omitempty"`
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wsnloc-load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url      = fs.String("url", "", "daemon base URL (e.g. http://127.0.0.1:8080); required")
		endpoint = fs.String("endpoint", "solve", `endpoint to load: "solve" or "sweep"`)
		rps      = fs.Float64("rps", 100, "target request rate (open loop: arrivals follow the clock, not completions)")
		duration = fs.Duration("duration", 5*time.Second, "measured window length")
		warmup   = fs.Duration("warmup", time.Second, "unmeasured lead-in (fills caches, warms connections)")
		conc     = fs.Int("concurrency", 256, "max in-flight requests; arrivals past the cap are counted as skipped, not queued")
		dup      = fs.Float64("dup", 0, "duplicate-spec ratio in [0,1]: probability a request reuses the shared hot spec")
		seed     = fs.Int64("seed", 1, "RNG seed for the duplicate/unique arrival pattern")
		timeout  = fs.Duration("timeout", 60*time.Second, "per-request timeout")
		matrix   = fs.Bool("matrix", false, "run the full {solve,sweep}×{dup 0,0.9} matrix (ignores -endpoint/-dup)")
		minSpeed = fs.Float64("check-dup-speedup", 0, "with -matrix: exit 1 unless every endpoint's dup-heavy p99 is at least this many times better than dup-free")
		out      = fs.String("o", "", "write the JSON document here (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *url == "" {
		fmt.Fprintln(stderr, "wsnloc-load: -url is required")
		return 2
	}
	if *dup < 0 || *dup > 1 {
		fmt.Fprintln(stderr, "wsnloc-load: -dup must be in [0,1]")
		return 2
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *conc,
			MaxIdleConnsPerHost: *conc,
		},
	}

	doc := Doc{Tool: "wsnloc-load", URL: *url}
	g := generator{client: client, base: *url, warmup: *warmup, duration: *duration, conc: *conc, rps: *rps, seed: *seed}
	if *matrix {
		// Duplicate-free first so its executions, not leftovers of the
		// dup-heavy run, define the cold baseline; each cell re-seeds so the
		// arrival pattern is reproducible per cell.
		for _, ep := range []string{"solve", "sweep"} {
			for _, d := range []float64{0, 0.9} {
				r, err := g.run(ctx, ep, d, stderr)
				if err != nil {
					fmt.Fprintln(stderr, "wsnloc-load:", err)
					return 1
				}
				doc.Runs = append(doc.Runs, *r)
			}
		}
		doc.DupSpeedupP99 = speedups(doc.Runs)
	} else {
		r, err := g.run(ctx, *endpoint, *dup, stderr)
		if err != nil {
			fmt.Fprintln(stderr, "wsnloc-load:", err)
			return 1
		}
		doc.Runs = append(doc.Runs, *r)
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(stderr, "wsnloc-load:", err)
		return 1
	}
	if *out != "" {
		if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(stderr, "wsnloc-load:", err)
			return 1
		}
		fmt.Fprintf(stderr, "wsnloc-load: wrote %s\n", *out)
	} else {
		stdout.Write(buf.Bytes())
	}

	if *matrix && *minSpeed > 0 {
		for ep, s := range doc.DupSpeedupP99 {
			if s < *minSpeed {
				fmt.Fprintf(stderr, "wsnloc-load: FAIL %s dup-speedup p99 %.2fx < required %.2fx\n", ep, s, *minSpeed)
				return 1
			}
			fmt.Fprintf(stderr, "wsnloc-load: %s dup-speedup p99 %.2fx (>= %.2fx)\n", ep, s, *minSpeed)
		}
	}
	return 0
}

// speedups computes dup-free p99 / dup-heavy p99 per endpoint from a matrix
// run's results.
func speedups(runs []Run) map[string]float64 {
	free := map[string]float64{}
	heavy := map[string]float64{}
	for _, r := range runs {
		if r.DupRatio == 0 {
			free[r.Endpoint] = r.Latency.P99
		} else {
			heavy[r.Endpoint] = r.Latency.P99
		}
	}
	out := map[string]float64{}
	for ep, f := range free {
		if h, ok := heavy[ep]; ok && h > 0 {
			out[ep] = f / h
		}
	}
	return out
}

type generator struct {
	client   *http.Client
	base     string
	warmup   time.Duration
	duration time.Duration
	conc     int
	rps      float64
	seed     int64
}

// sample is one completed request's measurement.
type sample struct {
	latency  time.Duration
	status   int
	verdict  string
	err      bool
	measured bool
}

// specFor renders the request body for one arrival. Duplicates share seed 0;
// unique arrivals burn an incrementing seed so every body is a distinct
// content hash. dv-hop at N=250 costs ~25ms of real solver work per unique
// request — enough that duplicate-free traffic at a saturating rate queues
// visibly, so the memo/coalescing win shows up in p99 instead of hiding
// under HTTP noise.
func specFor(endpoint string, seed int) []byte {
	switch endpoint {
	case "sweep":
		return []byte(fmt.Sprintf(
			`{"scenarios":[{"N":250,"Field":120,"AnchorFrac":0.2,"Seed":3}],"algorithms":["dv-hop"],"seeds":[%d],"trials":1}`, seed+1))
	default:
		return []byte(fmt.Sprintf(
			`{"scenario":{"N":250,"Field":120,"AnchorFrac":0.2,"Seed":3},"algorithm":"dv-hop","seed":%d}`, seed+1))
	}
}

func (g generator) run(ctx context.Context, endpoint string, dup float64, stderr io.Writer) (*Run, error) {
	if endpoint != "solve" && endpoint != "sweep" {
		return nil, fmt.Errorf("unknown endpoint %q", endpoint)
	}
	fmt.Fprintf(stderr, "wsnloc-load: %s dup=%.2f rps=%g for %s (+%s warmup)\n",
		endpoint, dup, g.rps, g.duration, g.warmup)

	interval := time.Duration(float64(time.Second) / g.rps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	rnd := rand.New(rand.NewSource(g.seed))
	target := g.base + "/v1/" + endpoint

	var (
		wg       sync.WaitGroup
		inflight atomic.Int64
		skipped  int
		samples  = make(chan sample, 4096)
	)
	collected := make(chan []sample, 1)
	go func() {
		var all []sample
		for s := range samples {
			all = append(all, s)
		}
		collected <- all
	}()

	start := time.Now()
	measureFrom := start.Add(g.warmup)
	end := measureFrom.Add(g.duration)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	uniqueSeed := 0
loop:
	for now := start; now.Before(end); {
		select {
		case <-ctx.Done():
			break loop
		case now = <-ticker.C:
		}
		body := specFor(endpoint, 0)
		if rnd.Float64() >= dup {
			uniqueSeed++
			body = specFor(endpoint, uniqueSeed)
		}
		// Open loop with a client-side safety cap: arrivals keep coming on
		// the clock, but past -concurrency we record the overload instead of
		// stacking goroutines without bound.
		if int(inflight.Load()) >= g.conc {
			skipped++
			continue
		}
		inflight.Add(1)
		wg.Add(1)
		measured := !now.Before(measureFrom)
		go func(body []byte, measured bool) {
			defer wg.Done()
			defer inflight.Add(-1)
			t0 := time.Now()
			resp, err := g.client.Post(target, "application/json", bytes.NewReader(body))
			s := sample{latency: time.Since(t0), measured: measured}
			if err != nil {
				s.err = true
			} else {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				s.status = resp.StatusCode
				s.verdict = resp.Header.Get("X-Wsnloc-Cache")
				s.latency = time.Since(t0)
			}
			samples <- s
		}(body, measured)
	}
	wg.Wait()
	close(samples)
	all := <-collected

	r := &Run{Endpoint: endpoint, DupRatio: dup, TargetRPS: g.rps, DurationSec: g.duration.Seconds(), Skipped: skipped}
	var accepted []float64
	for _, s := range all {
		if !s.measured {
			continue
		}
		r.Sent++
		switch {
		case s.err:
			r.Errors++
		case s.status == http.StatusTooManyRequests:
			r.Shed++
		case s.status == http.StatusNotModified || (s.status >= 200 && s.status < 300):
			r.Accepted++
			if s.status == http.StatusNotModified {
				r.NotModified++
			}
			accepted = append(accepted, float64(s.latency)/float64(time.Millisecond))
			switch s.verdict {
			case "hit":
				r.Cache.Hit++
			case "coalesced":
				r.Cache.Coalesced++
			case "miss":
				r.Cache.Miss++
			}
		default:
			r.Errors++
		}
	}
	if r.Accepted > 0 {
		r.AchievedRPS = float64(r.Accepted) / g.duration.Seconds()
		r.Cache.HitRate = float64(r.Cache.Hit+r.Cache.Coalesced) / float64(r.Accepted)
	}
	r.Latency = percentilesOf(accepted)
	return r, nil
}

// percentilesOf summarizes latencies (milliseconds) with the
// nearest-rank method.
func percentilesOf(ms []float64) Percentiles {
	if len(ms) == 0 {
		return Percentiles{}
	}
	sort.Float64s(ms)
	rank := func(p float64) float64 {
		i := int(p*float64(len(ms))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ms) {
			i = len(ms) - 1
		}
		return ms[i]
	}
	var sum float64
	for _, v := range ms {
		sum += v
	}
	return Percentiles{
		P50:  rank(0.50),
		P95:  rank(0.95),
		P99:  rank(0.99),
		Mean: sum / float64(len(ms)),
		Max:  ms[len(ms)-1],
	}
}
