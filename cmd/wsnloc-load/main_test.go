package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"wsnloc/internal/exec"
	"wsnloc/internal/serve"
)

func testDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := serve.New(serve.Config{Pool: exec.Config{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return ts
}

func TestPercentilesOf(t *testing.T) {
	p := percentilesOf(nil)
	if p.P99 != 0 || p.Mean != 0 {
		t.Errorf("empty input: %+v", p)
	}

	ms := make([]float64, 100)
	for i := range ms {
		ms[i] = float64(i + 1) // 1..100
	}
	p = percentilesOf(ms)
	if p.P50 != 50 || p.P95 != 95 || p.P99 != 99 || p.Max != 100 {
		t.Errorf("1..100: got p50=%v p95=%v p99=%v max=%v", p.P50, p.P95, p.P99, p.Max)
	}
	if p.Mean != 50.5 {
		t.Errorf("mean = %v, want 50.5", p.Mean)
	}

	if got := percentilesOf([]float64{7}); got.P50 != 7 || got.P99 != 7 {
		t.Errorf("single sample: %+v", got)
	}
}

func TestSpecForDistinctSeeds(t *testing.T) {
	for _, ep := range []string{"solve", "sweep"} {
		a, b, dup := specFor(ep, 1), specFor(ep, 2), specFor(ep, 0)
		if bytes.Equal(a, b) {
			t.Errorf("%s: seeds 1 and 2 collide", ep)
		}
		if !bytes.Equal(dup, specFor(ep, 0)) {
			t.Errorf("%s: hot spec is not stable", ep)
		}
		var v map[string]interface{}
		if err := json.Unmarshal(a, &v); err != nil {
			t.Errorf("%s spec is not JSON: %v", ep, err)
		}
	}
}

func TestSpeedups(t *testing.T) {
	runs := []Run{
		{Endpoint: "solve", DupRatio: 0, Latency: Percentiles{P99: 100}},
		{Endpoint: "solve", DupRatio: 0.9, Latency: Percentiles{P99: 10}},
		{Endpoint: "sweep", DupRatio: 0, Latency: Percentiles{P99: 50}},
		{Endpoint: "sweep", DupRatio: 0.9, Latency: Percentiles{P99: 25}},
	}
	s := speedups(runs)
	if s["solve"] != 10 || s["sweep"] != 2 {
		t.Errorf("speedups = %v", s)
	}
	// A zero dup-heavy p99 must not divide; the endpoint is just absent.
	s = speedups([]Run{
		{Endpoint: "solve", DupRatio: 0, Latency: Percentiles{P99: 100}},
		{Endpoint: "solve", DupRatio: 0.9, Latency: Percentiles{P99: 0}},
	})
	if _, ok := s["solve"]; ok {
		t.Errorf("zero p99 produced a speedup: %v", s)
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(context.Background(), []string{}, &out, &errb); code != 2 {
		t.Errorf("missing -url: code %d", code)
	}
	errb.Reset()
	if code := run(context.Background(), []string{"-url", "http://x", "-dup", "1.5"}, &out, &errb); code != 2 {
		t.Errorf("bad -dup: code %d", code)
	}
	errb.Reset()
	if code := run(context.Background(), []string{"-url", "http://localhost:1", "-endpoint", "nope", "-duration", "10ms", "-warmup", "0"}, &out, &errb); code != 1 {
		t.Errorf("bad endpoint: code %d, stderr %s", code, errb.String())
	}
}

// TestLoadAgainstLiveServer drives a short dup-heavy run end to end and
// checks the emitted document: everything accepted, the duplicate traffic
// visibly hitting the daemon's cache tiers.
func TestLoadAgainstLiveServer(t *testing.T) {
	ts := testDaemon(t)
	var out, errb strings.Builder
	code := run(context.Background(), []string{
		"-url", ts.URL, "-endpoint", "solve",
		"-rps", "100", "-duration", "400ms", "-warmup", "100ms",
		"-dup", "0.9", "-seed", "42",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("run: code %d, stderr %s", code, errb.String())
	}

	var doc Doc
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if doc.Tool != "wsnloc-load" || len(doc.Runs) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	r := doc.Runs[0]
	if r.Endpoint != "solve" || r.DupRatio != 0.9 {
		t.Errorf("run meta: %+v", r)
	}
	if r.Sent == 0 || r.Accepted == 0 {
		t.Fatalf("no traffic measured: %+v", r)
	}
	if r.Errors != 0 {
		t.Errorf("errors = %d, stderr %s", r.Errors, errb.String())
	}
	if r.Cache.Hit+r.Cache.Coalesced == 0 {
		t.Error("dup-heavy run produced zero cache hits/coalesces")
	}
	if r.Cache.HitRate <= 0.5 {
		t.Errorf("hit rate = %v, want > 0.5 at dup 0.9", r.Cache.HitRate)
	}
	if r.Latency.P99 <= 0 || r.Latency.P50 > r.Latency.P99 {
		t.Errorf("implausible percentiles: %+v", r.Latency)
	}
}

// TestLoadMatrixWritesDoc runs the whole (tiny) matrix into a file and
// checks the speedup map exists for both endpoints.
func TestLoadMatrixWritesDoc(t *testing.T) {
	ts := testDaemon(t)
	path := t.TempDir() + "/BENCH_serve.json"
	var out, errb strings.Builder
	code := run(context.Background(), []string{
		"-url", ts.URL, "-matrix",
		"-rps", "60", "-duration", "250ms", "-warmup", "100ms",
		"-o", path,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("matrix run: code %d, stderr %s", code, errb.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 4 {
		t.Fatalf("runs = %d, want 4", len(doc.Runs))
	}
	for _, ep := range []string{"solve", "sweep"} {
		if _, ok := doc.DupSpeedupP99[ep]; !ok {
			t.Errorf("missing dup speedup for %s: %v", ep, doc.DupSpeedupP99)
		}
	}
}
