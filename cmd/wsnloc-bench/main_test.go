package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	for _, id := range []string{"E1", "E12", "Fig 7"} {
		if !strings.Contains(s, id) {
			t.Errorf("list missing %q:\n%s", id, s)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-e", "E99"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Errorf("stderr: %s", errb.String())
	}
}

func TestUnknownFormat(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-e", "E1", "-format", "xml"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d", code)
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d", code)
	}
}

func TestRunOneExperimentTextAndCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment")
	}
	var out, errb bytes.Buffer
	args := []string{"-e", "E9", "-trials", "1", "-scale", "0.3"}
	if code := run(context.Background(), args, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "E9") || !strings.Contains(out.String(), "done in") {
		t.Errorf("text output:\n%s", out.String())
	}

	out.Reset()
	args = append(args, "-format", "csv")
	if code := run(context.Background(), args, &out, &errb); code != 0 {
		t.Fatalf("csv exit %d: %s", code, errb.String())
	}
	s := out.String()
	if !strings.HasPrefix(s, "# E9") {
		t.Errorf("csv missing title comment:\n%s", s)
	}
	if !strings.Contains(s, "variant,mean/R") {
		t.Errorf("csv missing header:\n%s", s)
	}
	if strings.Contains(s, "done in") {
		t.Error("csv output polluted with timing line")
	}
}

func TestBadConvPath(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-e", "E1", "-conv", "simd"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "simd") {
		t.Errorf("stderr missing bad path name: %q", errb.String())
	}
}

func TestTimeoutFlagCancelsBench(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-e", "E1", "-timeout", "1ns"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "canceled") {
		t.Errorf("stderr missing cancellation message: %q", errb.String())
	}
}
