package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJSONSummary checks the machine-readable benchmark mode: a human table
// on stdout plus a stable JSON document on disk.
func TestJSONSummary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	var out, errb bytes.Buffer
	args := []string{"-json", path, "-json-algs", "centroid, dv-hop", "-trials", "1", "-scale", "0.2"}
	if code := run(context.Background(), args, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"benchmark summary", "algorithm", "centroid", "dv-hop", "wrote " + path} {
		if !strings.Contains(s, want) {
			t.Errorf("stdout missing %q:\n%s", want, s)
		}
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Trials     int `json:"trials"`
		Algorithms []struct {
			Algorithm string  `json:"algorithm"`
			MeanErr   float64 `json:"mean_err_m"`
			P95Err    float64 `json:"p95_err_m"`
			Coverage  float64 `json:"coverage"`
			WallSec   float64 `json:"wall_sec"`
		} `json:"algorithms"`
	}
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if sum.Trials != 1 || len(sum.Algorithms) != 2 {
		t.Fatalf("summary shape wrong: %+v", sum)
	}
	if sum.Algorithms[0].Algorithm != "centroid" || sum.Algorithms[1].Algorithm != "dv-hop" {
		t.Errorf("algorithm order wrong: %+v", sum.Algorithms)
	}
}

// TestJSONSummaryWithTrace checks -trace works alongside -json and yields
// valid JSONL with trial events.
func TestJSONSummaryWithTrace(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	tracePath := filepath.Join(dir, "trace.jsonl")
	var out, errb bytes.Buffer
	args := []string{"-json", jsonPath, "-json-algs", "centroid", "-trials", "2", "-scale", "0.2",
		"-trace", tracePath}
	if code := run(context.Background(), args, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	trials := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var obj map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("trace line invalid: %v", err)
		}
		if obj["event"] == "trial.done" {
			trials++
		}
	}
	if trials != 2 {
		t.Errorf("trace has %d trial events, want 2", trials)
	}
}

func TestSummaryUnknownAlgorithm(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-json", filepath.Join(t.TempDir(), "bench.json"), "-json-algs", "bogus"}
	if code := run(context.Background(), args, &out, &errb); code != 1 {
		t.Errorf("unknown algorithm: exit %d", code)
	}
}
