// Command wsnloc-bench regenerates the evaluation tables and figures of
// DESIGN.md §4.
//
// Usage:
//
//	wsnloc-bench -e E2              # one experiment, quick quality
//	wsnloc-bench -e all -full       # the whole evaluation at paper scale
//	wsnloc-bench -e E3 -trials 10 -scale 1.0
//	wsnloc-bench -e E2 -format csv  # machine-readable output
//	wsnloc-bench -list              # list experiment ids
//	wsnloc-bench -e all -timeout 5m # bound the run; exit 1 on expiry
//
// Observability:
//
//	wsnloc-bench -json bench.json   # per-algorithm JSON summary (replaces -e)
//	wsnloc-bench -e E2 -trace out.jsonl -cpuprofile cpu.pprof -memprofile mem.pprof
//	wsnloc-bench -e all -pprof localhost:6060   # live /debug/pprof while running
//	wsnloc-bench -e all -obs-http :6060         # full ops plane: /metrics /events /debug/pprof
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wsnloc/internal/expt"
	"wsnloc/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("wsnloc-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		id      = fs.String("e", "all", "experiment id (E1..E12) or 'all'")
		full    = fs.Bool("full", false, "paper-scale quality (8 trials, full sizes)")
		trials  = fs.Int("trials", 0, "override Monte-Carlo trials")
		scale   = fs.Float64("scale", 0, "override network-size scale (1.0 = paper scale)")
		format  = fs.String("format", "text", "output format: text|csv")
		list    = fs.Bool("list", false, "list experiments and exit")
		conv    = fs.String("conv", "", "BNCL message-convolution path: auto|sparse|fft ('' = auto)")
		censor  = fs.Float64("censor", 0, "BNCL message-censoring threshold (0 = off)")
		prune   = fs.Float64("prune", 0, "BNCL belief support-pruning floor, relative to the belief max (0 = off, must be < 1)")
		workers = fs.Int("workers", 0, "simulator worker-pool size per localization (0 = GOMAXPROCS, 1 = sequential; results identical)")
		timeout = fs.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit); exits 1 on expiry")

		jsonPath   = fs.String("json", "", "write a per-algorithm JSON benchmark summary to this path (runs the summary instead of -e)")
		jsonAlgs   = fs.String("json-algs", "", "comma-separated algorithm list for -json (default: the E1 set)")
		tracePath  = fs.String("trace", "", "write a JSONL trace of trial/round/phase events to this path")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile = fs.String("memprofile", "", "write a heap profile to this path")
		pprofAddr  = fs.String("pprof", "", "serve /debug/pprof on this address while running (e.g. localhost:6060)")
		obsAddr    = fs.String("obs-http", "", "serve the live ops plane (/metrics, /events, /healthz, /buildinfo, /debug/pprof) on this address, e.g. :6060")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range expt.All() {
			fmt.Fprintf(stdout, "%-4s %-8s %s\n", e.ID, e.Ref, e.Title)
		}
		return 0
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	q := expt.Quick()
	if *full {
		q = expt.Full()
	}
	if *trials > 0 {
		q.Trials = *trials
	}
	if *scale > 0 {
		q.Scale = *scale
	}
	q.SimWorkers = *workers
	q.Conv = *conv
	q.Censor = *censor
	q.Prune = *prune

	var tracers []obs.Tracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(stderr, "wsnloc-bench:", err)
			return 1
		}
		jsonl := obs.NewJSONL(f)
		tracers = append(tracers, jsonl)
		// Check the sink on every exit path: a trace that silently lost
		// events must fail the run, not just log nothing.
		defer func() {
			if err := jsonl.Err(); err != nil {
				fmt.Fprintln(stderr, "wsnloc-bench: trace:", err)
				if code == 0 {
					code = 1
				}
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "wsnloc-bench: trace:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}
	if *obsAddr != "" {
		reg := obs.NewRegistry()
		tracers = append(tracers, obs.NewMetricsSink(reg))
		bc := obs.NewBroadcast(obs.DefaultBroadcastDepth)
		tracers = append(tracers, bc)
		sampler := obs.StartRuntimeSampler(reg, 0)
		defer sampler.Stop()
		srv, err := obs.StartOpsServer(*obsAddr, reg, bc)
		if err != nil {
			fmt.Fprintln(stderr, "wsnloc-bench:", err)
			return 1
		}
		// Graceful on the way out: open /events streams end with a clean EOF
		// instead of a connection reset, bounded so a stuck peer cannot hold
		// the process hostage.
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(sctx)
		}()
		fmt.Fprintf(stderr, "obs: serving http://%s/ (metrics, events, pprof)\n", srv.Addr())
	}
	tr := obs.Multi(tracers...)
	q.Tracer = tr
	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "wsnloc-bench:", err)
			return 1
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memProfile); err != nil {
				fmt.Fprintln(stderr, "wsnloc-bench:", err)
			}
		}()
	}
	if *pprofAddr != "" {
		bound, shutdown, err := obs.StartPprofServer(*pprofAddr)
		if err != nil {
			fmt.Fprintln(stderr, "wsnloc-bench:", err)
			return 1
		}
		defer shutdown()
		fmt.Fprintf(stderr, "pprof: http://%s/debug/pprof/\n", bound)
	}

	if *jsonPath != "" {
		// Trace-sink health is checked by the deferred handler on every path.
		return runSummary(ctx, stdout, stderr, q, *jsonPath, *jsonAlgs, tr)
	}

	var selected []expt.Experiment
	if strings.EqualFold(*id, "all") {
		selected = expt.All()
	} else {
		e, err := expt.ByID(*id)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		selected = []expt.Experiment{e}
	}

	for _, e := range selected {
		start := time.Now()
		var err error
		switch *format {
		case "csv":
			err = e.RunCSVCtx(ctx, stdout, q)
		case "text", "":
			err = e.RunCtx(ctx, stdout, q)
		default:
			fmt.Fprintf(stderr, "unknown format %q\n", *format)
			return 2
		}
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				fmt.Fprintf(stderr, "wsnloc-bench: %s canceled (timeout %s): %v\n", e.ID, *timeout, err)
			} else {
				fmt.Fprintf(stderr, "%s failed: %v\n", e.ID, err)
			}
			return 1
		}
		if *format != "csv" {
			fmt.Fprintf(stdout, "[%s done in %.1fs]\n", e.ID, time.Since(start).Seconds())
		}
	}
	return 0
}

// runSummary executes the machine-readable benchmark: every algorithm in
// algsCSV (default: the E1 set) on the default scenario at quality q, a
// compact human table on stdout, and the stable JSON document at path.
func runSummary(ctx context.Context, stdout, stderr io.Writer, q expt.Quality, path, algsCSV string, tr obs.Tracer) int {
	var algs []string
	if algsCSV != "" {
		for _, a := range strings.Split(algsCSV, ",") {
			if a = strings.TrimSpace(a); a != "" {
				algs = append(algs, a)
			}
		}
	}
	sum, err := expt.SummarizeCtx(ctx, q, algs, tr)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			fmt.Fprintln(stderr, "wsnloc-bench: summary canceled:", err)
		} else {
			fmt.Fprintln(stderr, "wsnloc-bench:", err)
		}
		return 1
	}

	fmt.Fprintf(stdout, "benchmark summary — n=%d, %d trials\n", sum.Scenario.N, sum.Trials)
	fmt.Fprintf(stdout, "%-16s %9s %9s %9s %6s %10s %9s\n",
		"algorithm", "mean(m)", "p95(m)", "mean/R", "cov", "msgs/node", "wall(s)")
	for _, a := range sum.Algorithms {
		fmt.Fprintf(stdout, "%-16s %9.2f %9.2f %9.3f %6.2f %10.1f %9.2f\n",
			a.Algorithm, a.MeanErr, a.P95Err, a.NormMean, a.Coverage, a.MsgsPerNode, a.WallSec)
	}

	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(stderr, "wsnloc-bench:", err)
		return 1
	}
	werr := sum.WriteJSON(f)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		fmt.Fprintln(stderr, "wsnloc-bench: writing summary failed")
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return 0
}
