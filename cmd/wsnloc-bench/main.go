// Command wsnloc-bench regenerates the evaluation tables and figures of
// DESIGN.md §4.
//
// Usage:
//
//	wsnloc-bench -e E2              # one experiment, quick quality
//	wsnloc-bench -e all -full       # the whole evaluation at paper scale
//	wsnloc-bench -e E3 -trials 10 -scale 1.0
//	wsnloc-bench -e E2 -format csv  # machine-readable output
//	wsnloc-bench -list              # list experiment ids
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"wsnloc/internal/expt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wsnloc-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		id     = fs.String("e", "all", "experiment id (E1..E12) or 'all'")
		full   = fs.Bool("full", false, "paper-scale quality (8 trials, full sizes)")
		trials = fs.Int("trials", 0, "override Monte-Carlo trials")
		scale  = fs.Float64("scale", 0, "override network-size scale (1.0 = paper scale)")
		format = fs.String("format", "text", "output format: text|csv")
		list   = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range expt.All() {
			fmt.Fprintf(stdout, "%-4s %-8s %s\n", e.ID, e.Ref, e.Title)
		}
		return 0
	}

	q := expt.Quick()
	if *full {
		q = expt.Full()
	}
	if *trials > 0 {
		q.Trials = *trials
	}
	if *scale > 0 {
		q.Scale = *scale
	}

	var selected []expt.Experiment
	if strings.EqualFold(*id, "all") {
		selected = expt.All()
	} else {
		e, err := expt.ByID(*id)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		selected = []expt.Experiment{e}
	}

	for _, e := range selected {
		start := time.Now()
		var err error
		switch *format {
		case "csv":
			err = e.RunCSV(stdout, q)
		case "text", "":
			err = e.Run(stdout, q)
		default:
			fmt.Fprintf(stderr, "unknown format %q\n", *format)
			return 2
		}
		if err != nil {
			fmt.Fprintf(stderr, "%s failed: %v\n", e.ID, err)
			return 1
		}
		if *format != "csv" {
			fmt.Fprintf(stdout, "[%s done in %.1fs]\n", e.ID, time.Since(start).Seconds())
		}
	}
	return 0
}
