package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceOutput is the acceptance check of the observability layer:
// `wsnloc -trace out.jsonl` must produce valid JSONL carrying the per-round
// BNCL convergence events.
func TestTraceOutput(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "out.jsonl")
	var out, errb bytes.Buffer
	args := []string{"-n", "60", "-field", "70", "-alg", "bncl-grid", "-seed", "4", "-trace", trace}
	if code := run(context.Background(), args, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}

	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	counts := map[string]int{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		var obj map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", line, err, sc.Text())
		}
		name, _ := obj["event"].(string)
		if name == "" {
			t.Fatalf("line %d has no event name: %s", line, sc.Text())
		}
		if _, ok := obj["t"].(string); !ok {
			t.Fatalf("line %d has no timestamp: %s", line, sc.Text())
		}
		counts[name]++
		if name == "bncl.round" {
			if _, ok := obj["round"].(float64); !ok {
				t.Errorf("bncl.round without round index: %s", sc.Text())
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if counts["bncl.round"] == 0 {
		t.Errorf("no bncl.round events in trace (have %v)", counts)
	}
	if counts["bncl.phase"] == 0 {
		t.Errorf("no bncl.phase events in trace (have %v)", counts)
	}
	if counts["bncl.run.done"] != 1 {
		t.Errorf("bncl.run.done count = %d, want 1", counts["bncl.run.done"])
	}
	if counts["algorithm"] != 1 {
		t.Errorf("algorithm count = %d, want 1", counts["algorithm"])
	}
}

func TestMetricsOutput(t *testing.T) {
	dir := t.TempDir()
	mjson := filepath.Join(dir, "metrics.json")
	mprom := filepath.Join(dir, "metrics.prom")
	var out, errb bytes.Buffer
	args := []string{"-n", "60", "-field", "70", "-alg", "bncl-grid", "-seed", "4",
		"-metrics", mjson, "-metrics-prom", mprom}
	if code := run(context.Background(), args, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}

	data, err := os.ReadFile(mjson)
	if err != nil {
		t.Fatal(err)
	}
	var reg struct {
		Counters map[string]float64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &reg); err != nil {
		t.Fatalf("metrics JSON invalid: %v", err)
	}
	if reg.Counters["wsnloc_bncl_runs_total"] != 1 {
		t.Errorf("wsnloc_bncl_runs_total = %v, want 1 (counters %v)",
			reg.Counters["wsnloc_bncl_runs_total"], reg.Counters)
	}
	if reg.Counters["wsnloc_bncl_bp_rounds_total"] == 0 {
		t.Error("no BP rounds counted")
	}

	prom, err := os.ReadFile(mprom)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "# TYPE wsnloc_bncl_runs_total counter") {
		t.Errorf("prometheus output malformed:\n%s", prom)
	}
}

func TestProfileOutput(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errb bytes.Buffer
	args := []string{"-n", "50", "-field", "65", "-alg", "min-max",
		"-cpuprofile", cpu, "-memprofile", mem}
	if code := run(context.Background(), args, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if fi, err := os.Stat(mem); err != nil || fi.Size() == 0 {
		t.Errorf("heap profile missing or empty: %v", err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Errorf("cpu profile missing or empty: %v", err)
	}
}

func TestTraceUnwritablePath(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-n", "50", "-alg", "min-max", "-trace", filepath.Join(t.TempDir(), "no/such/dir.jsonl")}
	if code := run(context.Background(), args, &out, &errb); code != 1 {
		t.Errorf("unwritable trace path: exit %d", code)
	}
}
