package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListAlgorithms(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-algs"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	for _, a := range []string{"bncl-grid", "dv-hop", "mds-map"} {
		if !strings.Contains(out.String(), a) {
			t.Errorf("missing %q:\n%s", a, out.String())
		}
	}
}

func TestRunScenarioSummary(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-n", "60", "-field", "70", "-alg", "centroid", "-seed", "4"}
	if code := run(context.Background(), args, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"algorithm", "centroid", "mean error", "coverage", "traffic"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestVerboseAndPlot(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-n", "50", "-field", "65", "-alg", "min-max", "-v", "-plot"}
	if code := run(context.Background(), args, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "truth") || !strings.Contains(s, "anchor") {
		t.Errorf("verbose table missing:\n%s", s)
	}
	if !strings.Contains(s, "+---") {
		t.Errorf("plot frame missing:\n%s", s)
	}
	if !strings.Contains(s, "A anchor") {
		t.Errorf("plot legend missing:\n%s", s)
	}
}

func TestConvFlag(t *testing.T) {
	for _, conv := range []string{"sparse", "fft", "auto"} {
		var out, errb bytes.Buffer
		args := []string{"-n", "30", "-field", "50", "-alg", "bncl-grid", "-conv", conv, "-seed", "3"}
		if code := run(context.Background(), args, &out, &errb); code != 0 {
			t.Fatalf("-conv %s: exit %d: %s", conv, code, errb.String())
		}
		if !strings.Contains(out.String(), "mean error") {
			t.Errorf("-conv %s: summary missing:\n%s", conv, out.String())
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	// Note: -n 0 is NOT an error — Scenario treats zero as "use default".
	cases := [][]string{
		{"-alg", "bogus"},
		{"-shape", "heptagon"},
		{"-loss", "1.5"},
		{"-alg", "bncl-grid", "-conv", "simd"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(context.Background(), args, &out, &errb); code != 1 {
			t.Errorf("args %v: exit %d (stderr %q)", args, code, errb.String())
		}
	}
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-badflag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag exit %d", code)
	}
}

func TestConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	cfg := `{"N": 40, "Field": 60, "Shape": "o", "R": 18, "AnchorFrac": 0.2}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	args := []string{"-config", path, "-alg", "min-max", "-seed", "5"}
	if code := run(context.Background(), args, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "40 (8 anchors)") {
		t.Errorf("config values not applied:\n%s", out.String())
	}

	// Missing file and invalid JSON.
	if code := run(context.Background(), []string{"-config", filepath.Join(dir, "nope.json")}, &out, &errb); code != 1 {
		t.Errorf("missing config exit %d", code)
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if code := run(context.Background(), []string{"-config", bad}, &out, &errb); code != 1 {
		t.Errorf("bad config exit %d", code)
	}
}

func TestPNGOutput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "field.png")
	var out, errb bytes.Buffer
	args := []string{"-n", "50", "-field", "65", "-alg", "min-max", "-png", path}
	if code := run(context.Background(), args, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 8 || string(data[1:4]) != "PNG" {
		t.Error("output is not a PNG")
	}
	// Unwritable path fails cleanly.
	if code := run(context.Background(), append(args[:len(args)-1], filepath.Join(dir, "no/such/dir.png")), &out, &errb); code != 1 {
		t.Error("unwritable png path accepted")
	}
}

func TestTimeoutFlagCancelsRun(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-n", "200", "-alg", "bncl-grid", "-timeout", "1ns"}
	if code := run(context.Background(), args, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "canceled") {
		t.Errorf("stderr missing cancellation message: %q", errb.String())
	}
}

func TestSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.json")
	spec := `{"scenario": {"N": 40, "Field": 60, "Seed": 5}, "algorithm": "min-max", "seed": 11}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-spec", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "min-max") {
		t.Errorf("spec algorithm not applied:\n%s", out.String())
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"algorithm": "no-such-alg"}`), 0o644)
	if code := run(context.Background(), []string{"-spec", bad}, &out, &errb); code != 1 {
		t.Errorf("invalid spec exit %d, want 1", code)
	}
}
