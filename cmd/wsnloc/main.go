// Command wsnloc runs one localization scenario and prints per-node
// estimates plus a summary.
//
// Usage:
//
//	wsnloc -n 150 -anchors 0.1 -alg bncl-grid -seed 7
//	wsnloc -alg dv-hop -shape c -noise 0.2 -v
//	wsnloc -alg bncl-grid -plot        # ASCII field map of the outcome
//	wsnloc -spec run.json              # replay a full Spec (scenario+alg+seed)
//	wsnloc -timeout 30s                # bound the run; exit 1 on expiry
//
// Observability:
//
//	wsnloc -trace out.jsonl            # per-round/phase JSONL trace
//	wsnloc -metrics out.json           # metrics-registry dump of the run
//	wsnloc -obs-http :6060             # live ops plane: /metrics /events /debug/pprof
//	wsnloc -cpuprofile cpu.pprof -memprofile mem.pprof
//	wsnloc -v                          # phase/round log lines on stderr
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	algpkg "wsnloc/internal/alg"
	"wsnloc/internal/core"
	"wsnloc/internal/expt"
	"wsnloc/internal/metrics"
	"wsnloc/internal/obs"
	"wsnloc/internal/rng"
	"wsnloc/internal/viz"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// writeFileWith creates path and streams write(f) into it.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("wsnloc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n       = fs.Int("n", 150, "node count")
		anchors = fs.Float64("anchors", 0.10, "anchor fraction")
		field   = fs.Float64("field", 100, "field side length (m)")
		r       = fs.Float64("r", 15, "radio range (m)")
		noise   = fs.Float64("noise", 0.10, "ranging noise sigma as fraction of R")
		shape   = fs.String("shape", "square", "deployment shape: square|c|o|x|h|corridor")
		prop    = fs.String("prop", "unitdisk", "propagation: unitdisk|qudg|shadow|doi")
		ranger  = fs.String("ranger", "toa", "ranging: toa|rssi|nlos|hop")
		loss    = fs.Float64("loss", 0, "packet loss probability")
		algName = fs.String("alg", "bncl-grid",
			"algorithm: "+strings.Join(algpkg.Names(), "|"))
		seed    = fs.Uint64("seed", 1, "random seed")
		conv    = fs.String("conv", "", "BNCL message-convolution path: auto|sparse|fft ('' = auto)")
		censor  = fs.Float64("censor", 0, "BNCL message-censoring threshold (0 = off)")
		prune   = fs.Float64("prune", 0, "BNCL belief support-pruning floor, relative to the belief max (0 = off, must be < 1)")
		workers = fs.Int("workers", 0, "simulator worker-pool size (0 = GOMAXPROCS, 1 = sequential; results identical)")
		timeout = fs.Duration("timeout", 0, "abort the run after this duration (0 = no limit); exits 1 on expiry")
		verbose = fs.Bool("v", false, "print per-node estimates")
		plot    = fs.Bool("plot", false, "print an ASCII field map of the outcome")
		pngPath = fs.String("png", "", "write a PNG field map of the outcome to this path")
		algs    = fs.Bool("algs", false, "list algorithms and exit")
		config  = fs.String("config", "", "JSON file with a scenario (replaces the scenario flags; -seed/-alg still apply)")
		specArg = fs.String("spec", "", "JSON file with a full run Spec (replaces the scenario flags, -alg and -seed)")

		tracePath   = fs.String("trace", "", "write a JSONL trace of per-round/per-phase events to this path")
		obsAddr     = fs.String("obs-http", "", "serve the live ops plane (/metrics, /events, /healthz, /buildinfo, /debug/pprof) on this address, e.g. :6060")
		metricsPath = fs.String("metrics", "", "write a JSON metrics-registry dump of the run to this path")
		promPath    = fs.String("metrics-prom", "", "write the metrics registry in Prometheus text format to this path")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile  = fs.String("memprofile", "", "write a heap profile to this path")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *algs {
		for _, a := range expt.AlgorithmNames() {
			fmt.Fprintln(stdout, a)
		}
		return 0
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	s := expt.Scenario{
		N: *n, AnchorFrac: *anchors, Field: *field, R: *r,
		NoiseFrac: *noise, Shape: *shape, Prop: *prop, Ranger: *ranger,
		Loss: *loss, Seed: *seed,
	}
	if *config != "" {
		data, err := os.ReadFile(*config)
		if err != nil {
			fmt.Fprintln(stderr, "wsnloc:", err)
			return 1
		}
		s = expt.Scenario{Seed: *seed}
		if err := json.Unmarshal(data, &s); err != nil {
			fmt.Fprintf(stderr, "wsnloc: parsing %s: %v\n", *config, err)
			return 1
		}
	}
	// Flag path: scenario seed is -seed, the algorithm stream is split off it.
	algOpts := algpkg.Opts{Workers: *workers, Conv: *conv, Censor: *censor, Prune: *prune}
	algSeed := *seed ^ 0xBEEF
	if *specArg != "" {
		data, err := os.ReadFile(*specArg)
		if err != nil {
			fmt.Fprintln(stderr, "wsnloc:", err)
			return 1
		}
		sp, err := algpkg.ParseSpec(data)
		if err != nil {
			fmt.Fprintf(stderr, "wsnloc: parsing %s: %v\n", *specArg, err)
			return 1
		}
		sp = sp.Normalize()
		s = sp.Scenario
		*algName = sp.Algorithm
		algOpts = sp.AlgOpts
		algSeed = sp.Seed
	}
	p, err := s.Build()
	if err != nil {
		fmt.Fprintln(stderr, "wsnloc:", err)
		return 1
	}

	// Observability wiring: compose the requested sinks into one tracer and
	// hand it to the algorithm builder.
	var tracers []obs.Tracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(stderr, "wsnloc:", err)
			return 1
		}
		jsonl := obs.NewJSONL(f)
		tracers = append(tracers, jsonl)
		// A trace that silently lost events (full disk, bad mount) is worse
		// than no trace: check the sink on every exit path, not just success.
		defer func() {
			if err := jsonl.Err(); err != nil {
				fmt.Fprintln(stderr, "wsnloc: trace:", err)
				if code == 0 {
					code = 1
				}
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "wsnloc: trace:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}
	reg := obs.NewRegistry()
	if *metricsPath != "" || *promPath != "" || *obsAddr != "" {
		tracers = append(tracers, obs.NewMetricsSink(reg))
	}
	if *verbose {
		tracers = append(tracers, obs.NewLog(stderr))
	}
	if *obsAddr != "" {
		bc := obs.NewBroadcast(obs.DefaultBroadcastDepth)
		tracers = append(tracers, bc)
		sampler := obs.StartRuntimeSampler(reg, 0)
		defer sampler.Stop()
		srv, err := obs.StartOpsServer(*obsAddr, reg, bc)
		if err != nil {
			fmt.Fprintln(stderr, "wsnloc:", err)
			return 1
		}
		// Graceful on the way out: open /events streams end with a clean EOF
		// instead of a connection reset, bounded so a stuck peer cannot hold
		// the process hostage.
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(sctx)
		}()
		fmt.Fprintf(stderr, "obs: serving http://%s/ (metrics, events, pprof)\n", srv.Addr())
	}
	tr := obs.Multi(tracers...)

	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "wsnloc:", err)
			return 1
		}
		defer stop()
	}

	algOpts.Tracer = tr
	alg, err := expt.NewAlgorithm(*algName, algOpts)
	if err != nil {
		fmt.Fprintln(stderr, "wsnloc:", err)
		return 1
	}
	res, err := core.LocalizeContext(ctx, alg, p, rng.New(algSeed))
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			fmt.Fprintf(stderr, "wsnloc: run canceled (timeout %s): %v\n", *timeout, err)
		} else {
			fmt.Fprintln(stderr, "wsnloc:", err)
		}
		return 1
	}

	if *metricsPath != "" {
		if err := writeFileWith(*metricsPath, reg.WriteJSON); err != nil {
			fmt.Fprintln(stderr, "wsnloc:", err)
			return 1
		}
	}
	if *promPath != "" {
		if err := writeFileWith(*promPath, reg.WritePrometheus); err != nil {
			fmt.Fprintln(stderr, "wsnloc:", err)
			return 1
		}
	}
	if *memProfile != "" {
		if err := obs.WriteHeapProfile(*memProfile); err != nil {
			fmt.Fprintln(stderr, "wsnloc:", err)
			return 1
		}
	}

	if *plot {
		fmt.Fprint(stdout, viz.FieldMap(p, res, 72))
		fmt.Fprintln(stdout)
	}
	if *pngPath != "" {
		f, err := os.Create(*pngPath)
		if err != nil {
			fmt.Fprintln(stderr, "wsnloc:", err)
			return 1
		}
		werr := viz.WriteFieldPNG(f, p, res, 800)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			fmt.Fprintln(stderr, "wsnloc: writing png failed")
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *pngPath)
	}

	if *verbose {
		fmt.Fprintf(stdout, "%-5s %-7s %-22s %-22s %-9s %s\n",
			"node", "kind", "truth", "estimate", "err(m)", "conf(m)")
		for i := 0; i < p.Deploy.N(); i++ {
			kind := "node"
			if p.Deploy.Anchor[i] {
				kind = "anchor"
			} else if !res.Localized[i] {
				kind = "lost"
			}
			errStr := "-"
			if res.Localized[i] && !p.Deploy.Anchor[i] {
				errStr = fmt.Sprintf("%.2f", res.Est[i].Dist(p.Deploy.Pos[i]))
			}
			fmt.Fprintf(stdout, "%-5d %-7s %-22s %-22s %-9s %.2f\n",
				i, kind, p.Deploy.Pos[i], res.Est[i], errStr, res.Confidence[i])
		}
		fmt.Fprintln(stdout)
	}

	e := metrics.Evaluate(p, res)
	fmt.Fprintf(stdout, "algorithm      %s\n", alg.Name())
	fmt.Fprintf(stdout, "nodes          %d (%d anchors), avg degree %.1f\n",
		p.Deploy.N(), p.Deploy.NumAnchors(), p.Graph.AvgDegree())
	fmt.Fprintf(stdout, "mean error     %.2f m (%.3f R)\n", e.MeanErr(), e.NormMean())
	fmt.Fprintf(stdout, "median error   %.2f m (%.3f R)\n", e.MedianErr(), e.NormMedian())
	fmt.Fprintf(stdout, "rmse           %.2f m (%.3f R)\n", e.RMSE(), e.NormRMSE())
	fmt.Fprintf(stdout, "p90 error      %.2f m\n", e.P90Err())
	fmt.Fprintf(stdout, "coverage       %.1f%% (%.1f%% within 0.5R)\n",
		100*e.Coverage(), 100*e.CoverageWithin(0.5*p.R))
	fmt.Fprintf(stdout, "traffic        %d msgs (%.1f/node), %d bytes, %.0f uJ\n",
		e.Messages, e.MsgsPerNode(), e.Bytes, e.EnergyuJ)
	fmt.Fprintf(stdout, "rounds         %d\n", res.Rounds)
	return 0
}
