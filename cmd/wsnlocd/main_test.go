package main

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read stderr while run() writes it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestBadFlagExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestBadAddrExitsOne(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-addr", "999.999.999.999:1"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr %s", code, errb.String())
	}
}

// TestDaemonServesAndDrains boots the daemon on a free port, exercises both
// planes (API solve + ops healthz), then cancels the context and verifies a
// clean drain — the in-process version of scripts/serve_smoke.sh.
func TestDaemonServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	errb := &syncBuffer{}
	done := make(chan int, 1)
	go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2"}, &out, errb) }()

	// Parse the boot handshake off stderr.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no serving line on stderr: %s", errb.String())
		}
		for _, line := range strings.Split(errb.String(), "\n") {
			if strings.Contains(line, "serving http://") {
				base = strings.TrimSuffix(strings.Fields(line)[2], "/")
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	line, _ := bufio.NewReader(resp.Body).ReadString('\n')
	resp.Body.Close()
	if strings.TrimSpace(line) != "ok" {
		t.Errorf("healthz = %q, want ok", line)
	}

	spec := `{"scenario":{"N":40,"Field":60,"AnchorFrac":0.25,"Seed":3},"algorithm":"centroid"}`
	post, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	body, _ := io.ReadAll(post.Body)
	post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d, body %s", post.StatusCode, body)
	}

	// /metrics must expose the exec-pool instruments (one job just ran).
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "wsnloc_exec_jobs_total") {
		t.Error("/metrics missing wsnloc_exec_jobs_total")
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit = %d, want 0; stderr %s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain within 15s")
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Errorf("stdout = %q, want drained cleanly", out.String())
	}
}
