// Command wsnlocd serves localization as a long-running service: it accepts
// alg.Spec and sweep-spec JSON over HTTP, executes them on one shared
// bounded worker pool, and memoizes results content-addressed by canonical
// spec hash — identical specs from different clients return byte-identical
// cached bytes instantly.
//
// Usage:
//
//	wsnlocd -addr :8080                          # serve the API + ops plane
//	wsnlocd -addr :8080 -workers 8 -queue 128    # size the execution plane
//	wsnlocd -addr :8080 -cache results/          # persist sweep cells across restarts
//
//	curl -s localhost:8080/v1/algorithms
//	curl -s -X POST localhost:8080/v1/solve -d '{"scenario":{"n":50},"algorithm":"centroid"}'
//	curl -s -X POST localhost:8080/v1/sweep -d @sweep.json
//
// With -cache set, sweeps can be sharded across requests (or across daemons
// sharing the cache directory) and merged once every shard has run:
//
//	curl -s -X POST 'localhost:8080/v1/sweep?shards=3&shard=0' -d @sweep.json
//	curl -s -X POST 'localhost:8080/v1/sweep?merge=1' -d @sweep.json
//
// The API answers 429 with Retry-After when the admission queue is full
// (backpressure, not buffering), 413 past -max-body, and 400 for invalid
// specs. SIGINT/SIGTERM drains gracefully: new requests get 503 while
// accepted jobs run to completion, bounded by -drain.
//
// The ops plane (/metrics, /events, /healthz, /buildinfo, /debug/pprof)
// is mounted on the same address, so one port serves both planes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wsnloc/internal/obs"
	"wsnloc/internal/serve"

	"wsnloc/internal/exec"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wsnlocd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		workers    = fs.Int("workers", 0, "execution-pool worker count (0 = all CPUs)")
		queue      = fs.Int("queue", exec.DefaultQueueDepth, "admission queue depth; a full queue answers 429")
		cacheDir   = fs.String("cache", "", "sweep cell cache directory (empty = in-memory memo only); sharded sweep requests and merges require it")
		memoDir    = fs.String("memo-dir", "", "response-memo disk tier: exact response bytes persist content-addressed across restarts (empty = in-memory LRU only)")
		leaseTTL   = fs.Duration("sweep-lease-ttl", 0, "shard lease time-to-live for sharded sweep requests; a shard silent this long is presumed dead (0 = engine default)")
		maxBody    = fs.Int64("max-body", serve.DefaultMaxBodyBytes, "request body size limit in bytes (oversize answers 413)")
		reqTimeout = fs.Duration("request-timeout", serve.DefaultRequestTimeout, "per-request execution deadline, queued wait included")
		memoSize   = fs.Int("memo-entries", serve.DefaultMemoEntries, "per-endpoint response memo bound (LRU entries; negative disables)")
		jobTTL     = fs.Duration("job-retention", serve.DefaultJobRetention, "how long finished job statuses stay queryable via /v1/jobs")
		// Slow-client protections (negative disables the timeout).
		readHeaderTO = fs.Duration("read-header-timeout", serve.DefaultReadHeaderTimeout, "max time a connection may take to send its request header (slowloris defense)")
		readTO       = fs.Duration("read-timeout", serve.DefaultReadTimeout, "max time to read one whole request, body included")
		idleTO       = fs.Duration("idle-timeout", serve.DefaultIdleTimeout, "how long an idle keep-alive connection is retained")
		maxHeader    = fs.Int("max-header-bytes", serve.DefaultMaxHeaderBytes, "per-connection request header size limit")
		drain      = fs.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight jobs on SIGINT/SIGTERM")
		verbose    = fs.Bool("v", false, "print event lines on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// One registry + broadcast feed both planes: the exec/serve instruments
	// land where /metrics scrapes, and every request's span chain streams
	// out of /events.
	reg := obs.NewRegistry()
	bc := obs.NewBroadcast(obs.DefaultBroadcastDepth)
	tracers := []obs.Tracer{obs.NewMetricsSink(reg), bc}
	if *verbose {
		tracers = append(tracers, obs.NewLog(stderr))
	}
	sampler := obs.StartRuntimeSampler(reg, 0)
	defer sampler.Stop()

	cfg := serve.Config{
		Pool:              exec.Config{Workers: *workers, QueueDepth: *queue, Metrics: reg},
		CacheDir:          *cacheDir,
		MemoDir:           *memoDir,
		SweepLeaseTTL:     *leaseTTL,
		MaxBodyBytes:      *maxBody,
		RequestTimeout:    *reqTimeout,
		MemoEntries:       *memoSize,
		JobRetention:      *jobTTL,
		ReadHeaderTimeout: *readHeaderTO,
		ReadTimeout:       *readTO,
		IdleTimeout:       *idleTO,
		MaxHeaderBytes:    *maxHeader,
		Registry:          reg,
		Tracer:            obs.Multi(tracers...),
	}
	api, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "wsnlocd:", err)
		return 1
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/", api.Handler())
	mux.Handle("/", obs.NewOpsMux(reg, bc))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "wsnlocd:", err)
		return 1
	}
	// The hardened server: header/read/idle timeouts and a header size cap,
	// so a slow or stalled client cannot pin a connection forever.
	srv := cfg.HTTPServer(mux)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	// The address line is the boot handshake scripts parse (port 0 runs).
	fmt.Fprintf(stderr, "wsnlocd: serving http://%s/ (API /v1, ops /metrics /events)\n", ln.Addr())

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "wsnlocd:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, refuse new jobs with 503,
	// let accepted work finish — all bounded by -drain.
	fmt.Fprintln(stderr, "wsnlocd: shutting down, draining in-flight jobs")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(stderr, "wsnlocd: http shutdown:", err)
		srv.Close()
		code = 1
	}
	if err := api.Shutdown(shutCtx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(stderr, "wsnlocd: drain:", err)
		code = 1
	}
	bc.CloseSubscribers()
	if code == 0 {
		fmt.Fprintln(stdout, "wsnlocd: drained cleanly")
	}
	return code
}
