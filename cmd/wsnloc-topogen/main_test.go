package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCSVOutput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-n", "30", "-format", "csv"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "# nodes: id,x,y,anchor,degree") {
		t.Error("nodes header missing")
	}
	if !strings.Contains(s, "# links: a,b,measured,true") {
		t.Error("links header missing")
	}
	// 30 node lines between the two headers.
	parts := strings.Split(s, "# links")
	if lines := strings.Count(parts[0], "\n"); lines != 31 { // header + 30
		t.Errorf("node line count = %d", lines)
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-n", "25", "-format", "json", "-seed", "2"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	var topo jsonTopo
	if err := json.Unmarshal(out.Bytes(), &topo); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if topo.N != 25 || len(topo.Nodes) != 25 {
		t.Errorf("N=%d nodes=%d", topo.N, len(topo.Nodes))
	}
	anchors := 0
	for _, n := range topo.Nodes {
		if n.Anchor {
			anchors++
		}
	}
	if anchors == 0 {
		t.Error("no anchors serialized")
	}
	if len(topo.Links) == 0 {
		t.Error("no links serialized")
	}
	for _, l := range topo.Links {
		if l.A < 0 || l.A >= 25 || l.B < 0 || l.B >= 25 {
			t.Fatalf("link endpoint out of range: %+v", l)
		}
	}
}

func TestMapOutput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-n", "30", "-format", "map", "-shape", "o"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "avg-degree") || !strings.Contains(out.String(), "+---") {
		t.Errorf("map output:\n%s", out.String())
	}
}

func TestBadInputs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-format", "yaml"}, &out, &errb); code != 2 {
		t.Errorf("bad format exit %d", code)
	}
	if code := run([]string{"-shape", "blob"}, &out, &errb); code != 1 {
		t.Errorf("bad shape exit %d", code)
	}
	if code := run([]string{"-zzz"}, &out, &errb); code != 2 {
		t.Errorf("bad flag exit %d", code)
	}
}
