// Command wsnloc-topogen generates a deployment + connectivity graph and
// dumps it as CSV (nodes, links) or JSON for external plotting.
//
// Usage:
//
//	wsnloc-topogen -n 150 -shape o -format csv > topo.csv
//	wsnloc-topogen -format json -seed 3
//	wsnloc-topogen -format map          # ASCII rendering
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"wsnloc/internal/expt"
	"wsnloc/internal/viz"
)

type jsonNode struct {
	ID     int     `json:"id"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Anchor bool    `json:"anchor"`
	Degree int     `json:"degree"`
}

type jsonLink struct {
	A        int     `json:"a"`
	B        int     `json:"b"`
	Measured float64 `json:"measured"`
	True     float64 `json:"true"`
}

type jsonTopo struct {
	N         int        `json:"n"`
	R         float64    `json:"r"`
	AvgDegree float64    `json:"avgDegree"`
	Nodes     []jsonNode `json:"nodes"`
	Links     []jsonLink `json:"links"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wsnloc-topogen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n      = fs.Int("n", 150, "node count")
		frac   = fs.Float64("anchors", 0.10, "anchor fraction")
		field  = fs.Float64("field", 100, "field side length (m)")
		r      = fs.Float64("r", 15, "radio range (m)")
		shape  = fs.String("shape", "square", "deployment shape")
		gen    = fs.String("gen", "uniform", "generator: uniform|grid|clusters")
		prop   = fs.String("prop", "unitdisk", "propagation model")
		seed   = fs.Uint64("seed", 1, "random seed")
		format = fs.String("format", "csv", "output format: csv|json|map")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	s := expt.Scenario{
		N: *n, AnchorFrac: *frac, Field: *field, R: *r,
		Shape: *shape, Gen: *gen, Prop: *prop, Seed: *seed,
	}
	p, err := s.Build()
	if err != nil {
		fmt.Fprintln(stderr, "wsnloc-topogen:", err)
		return 1
	}

	switch *format {
	case "csv":
		fmt.Fprintln(stdout, "# nodes: id,x,y,anchor,degree")
		for i, pos := range p.Deploy.Pos {
			fmt.Fprintf(stdout, "%d,%.3f,%.3f,%t,%d\n", i, pos.X, pos.Y, p.Deploy.Anchor[i], p.Graph.Degree(i))
		}
		fmt.Fprintln(stdout, "# links: a,b,measured,true")
		for _, l := range p.Graph.Links {
			fmt.Fprintf(stdout, "%d,%d,%.3f,%.3f\n", l.A, l.B, l.Meas, l.TrueDist)
		}
	case "json":
		topo := jsonTopo{N: p.Deploy.N(), R: p.R, AvgDegree: p.Graph.AvgDegree()}
		for i, pos := range p.Deploy.Pos {
			topo.Nodes = append(topo.Nodes, jsonNode{
				ID: i, X: pos.X, Y: pos.Y,
				Anchor: p.Deploy.Anchor[i], Degree: p.Graph.Degree(i),
			})
		}
		for _, l := range p.Graph.Links {
			topo.Links = append(topo.Links, jsonLink{A: l.A, B: l.B, Measured: l.Meas, True: l.TrueDist})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(topo); err != nil {
			fmt.Fprintln(stderr, "wsnloc-topogen:", err)
			return 1
		}
	case "map":
		fmt.Fprint(stdout, viz.FieldMap(p, nil, 72))
		fmt.Fprintf(stdout, "n=%d anchors=%d avg-degree=%.1f\n",
			p.Deploy.N(), p.Deploy.NumAnchors(), p.Graph.AvgDegree())
	default:
		fmt.Fprintf(stderr, "wsnloc-topogen: unknown format %q\n", *format)
		return 2
	}
	return 0
}
