package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const tinySweep = `{
	"name": "cli-test",
	"scenarios": [
		{"N": 25, "Field": 45, "AnchorFrac": 0.2, "Seed": 1},
		{"N": 25, "Field": 45, "AnchorFrac": 0.4, "Seed": 2}
	],
	"algorithms": ["centroid", "min-max"],
	"seeds": [3],
	"trials": 2
}`

func writeSpec(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUsageErrors(t *testing.T) {
	if code, _, stderr := runCLI(t); code != 2 || !strings.Contains(stderr, "-sweep is required") {
		t.Errorf("no args: code=%d stderr=%q", code, stderr)
	}
	if code, _, _ := runCLI(t, "-nonsense"); code != 2 {
		t.Errorf("bad flag: code=%d", code)
	}
	if code, _, stderr := runCLI(t, "-sweep", "/does/not/exist.json"); code != 1 || stderr == "" {
		t.Errorf("missing file: code=%d", code)
	}
	bad := writeSpec(t, `{"algorithms":["centroid"]}`)
	if code, _, stderr := runCLI(t, "-sweep", bad); code != 1 || !strings.Contains(stderr, "scenario") {
		t.Errorf("invalid sweep: code=%d stderr=%q", code, stderr)
	}
}

func TestColdRunThenResume(t *testing.T) {
	spec := writeSpec(t, tinySweep)
	out := t.TempDir()

	code, stdout, stderr := runCLI(t, "-sweep", spec, "-out", out, "-workers", "2")
	if code != 0 {
		t.Fatalf("cold run: code=%d stderr=%s", code, stderr)
	}
	if !strings.Contains(stdout, "cells 4: executed 4, cached 0") {
		t.Errorf("cold run stdout:\n%s", stdout)
	}
	sumPath := filepath.Join(out, "summary.json")
	first, err := os.ReadFile(sumPath)
	if err != nil {
		t.Fatalf("summary not written: %v", err)
	}
	if _, err := os.Stat(filepath.Join(out, "journal.jsonl")); err != nil {
		t.Fatalf("journal not written: %v", err)
	}

	code, stdout, stderr = runCLI(t, "-sweep", spec, "-out", out, "-resume")
	if code != 0 {
		t.Fatalf("resume: code=%d stderr=%s", code, stderr)
	}
	if !strings.Contains(stdout, "cells 4: executed 0, cached 4") {
		t.Errorf("resume stdout:\n%s", stdout)
	}
	second, err := os.ReadFile(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("resumed summary not byte-identical to cold run")
	}
	// The anchor-fraction axis has two values, so the table renders.
	if !strings.Contains(stdout, "rmse (R) vs anchor_frac") {
		t.Errorf("missing curve table:\n%s", stdout)
	}
}

func TestConvOverride(t *testing.T) {
	spec := writeSpec(t, tinySweep)
	out := t.TempDir()
	// A conv override is semantic, so the same sweep under a different path
	// populates different cache keys: the sparse run's cells are not reused.
	code, _, stderr := runCLI(t, "-sweep", spec, "-out", out, "-conv", "sparse")
	if code != 0 {
		t.Fatalf("conv sparse: code=%d stderr=%s", code, stderr)
	}
	code, stdout, stderr := runCLI(t, "-sweep", spec, "-out", out, "-resume", "-conv", "fft")
	if code != 0 {
		t.Fatalf("conv fft: code=%d stderr=%s", code, stderr)
	}
	if !strings.Contains(stdout, "cells 4: executed 4, cached 0") {
		t.Errorf("fft resume reused sparse cells:\n%s", stdout)
	}
	// Bad names are rejected by spec validation before anything runs.
	if code, _, stderr := runCLI(t, "-sweep", spec, "-conv", "simd"); code != 1 || !strings.Contains(stderr, "simd") {
		t.Errorf("bad conv: code=%d stderr=%q", code, stderr)
	}
}

func TestExpandDryRun(t *testing.T) {
	spec := writeSpec(t, tinySweep)
	code, stdout, stderr := runCLI(t, "-expand", spec)
	if code != 0 {
		t.Fatalf("code=%d stderr=%s", code, stderr)
	}
	lines := strings.Count(strings.TrimSpace(stdout), "\n") + 1
	if lines != 4 {
		t.Errorf("expanded %d cells, want 4:\n%s", lines, stdout)
	}
	if !strings.Contains(stdout, `"algorithm":"centroid"`) || !strings.Contains(stdout, `"key":"`) {
		t.Errorf("expansion lines incomplete:\n%s", stdout)
	}
}

func TestTraceFlag(t *testing.T) {
	spec := writeSpec(t, tinySweep)
	trace := filepath.Join(t.TempDir(), "run.jsonl")
	code, _, stderr := runCLI(t, "-sweep", spec, "-trace", trace, "-workers", "1")
	if code != 0 {
		t.Fatalf("code=%d stderr=%s", code, stderr)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"event":"sweep.start"`, `"event":"sweep.cell"`, `"event":"sweep.done"`, `"event":"trial"`} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("trace missing %s", want)
		}
	}
}

func TestTimeoutCancelsButCaches(t *testing.T) {
	spec := writeSpec(t, tinySweep)
	out := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // simulate an immediate SIGINT/-timeout expiry
	var stdout, stderr bytes.Buffer
	code := run(ctx, []string{"-sweep", spec, "-out", out, "-timeout", time.Minute.String()}, &stdout, &stderr)
	if code != 1 || !strings.Contains(stderr.String(), "rerun with -resume") {
		t.Errorf("code=%d stderr=%q", code, stderr.String())
	}
}
