package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"wsnloc/internal/sweep"
)

const tinySweep = `{
	"name": "cli-test",
	"scenarios": [
		{"N": 25, "Field": 45, "AnchorFrac": 0.2, "Seed": 1},
		{"N": 25, "Field": 45, "AnchorFrac": 0.4, "Seed": 2}
	],
	"algorithms": ["centroid", "min-max"],
	"seeds": [3],
	"trials": 2
}`

func writeSpec(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUsageErrors(t *testing.T) {
	if code, _, stderr := runCLI(t); code != 2 || !strings.Contains(stderr, "-sweep is required") {
		t.Errorf("no args: code=%d stderr=%q", code, stderr)
	}
	if code, _, _ := runCLI(t, "-nonsense"); code != 2 {
		t.Errorf("bad flag: code=%d", code)
	}
	if code, _, stderr := runCLI(t, "-sweep", "/does/not/exist.json"); code != 1 || stderr == "" {
		t.Errorf("missing file: code=%d", code)
	}
	bad := writeSpec(t, `{"algorithms":["centroid"]}`)
	if code, _, stderr := runCLI(t, "-sweep", bad); code != 1 || !strings.Contains(stderr, "scenario") {
		t.Errorf("invalid sweep: code=%d stderr=%q", code, stderr)
	}
}

func TestColdRunThenResume(t *testing.T) {
	spec := writeSpec(t, tinySweep)
	out := t.TempDir()

	code, stdout, stderr := runCLI(t, "-sweep", spec, "-out", out, "-workers", "2")
	if code != 0 {
		t.Fatalf("cold run: code=%d stderr=%s", code, stderr)
	}
	if !strings.Contains(stdout, "cells 4: executed 4, cached 0") {
		t.Errorf("cold run stdout:\n%s", stdout)
	}
	sumPath := filepath.Join(out, "summary.json")
	first, err := os.ReadFile(sumPath)
	if err != nil {
		t.Fatalf("summary not written: %v", err)
	}
	if _, err := os.Stat(filepath.Join(out, "journal.jsonl")); err != nil {
		t.Fatalf("journal not written: %v", err)
	}

	code, stdout, stderr = runCLI(t, "-sweep", spec, "-out", out, "-resume")
	if code != 0 {
		t.Fatalf("resume: code=%d stderr=%s", code, stderr)
	}
	if !strings.Contains(stdout, "cells 4: executed 0, cached 4") {
		t.Errorf("resume stdout:\n%s", stdout)
	}
	second, err := os.ReadFile(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("resumed summary not byte-identical to cold run")
	}
	// The anchor-fraction axis has two values, so the table renders.
	if !strings.Contains(stdout, "rmse (R) vs anchor_frac") {
		t.Errorf("missing curve table:\n%s", stdout)
	}
}

func TestConvOverride(t *testing.T) {
	spec := writeSpec(t, tinySweep)
	out := t.TempDir()
	// A conv override is semantic, so the same sweep under a different path
	// populates different cache keys: the sparse run's cells are not reused.
	code, _, stderr := runCLI(t, "-sweep", spec, "-out", out, "-conv", "sparse")
	if code != 0 {
		t.Fatalf("conv sparse: code=%d stderr=%s", code, stderr)
	}
	code, stdout, stderr := runCLI(t, "-sweep", spec, "-out", out, "-resume", "-conv", "fft")
	if code != 0 {
		t.Fatalf("conv fft: code=%d stderr=%s", code, stderr)
	}
	if !strings.Contains(stdout, "cells 4: executed 4, cached 0") {
		t.Errorf("fft resume reused sparse cells:\n%s", stdout)
	}
	// Bad names are rejected by spec validation before anything runs.
	if code, _, stderr := runCLI(t, "-sweep", spec, "-conv", "simd"); code != 1 || !strings.Contains(stderr, "simd") {
		t.Errorf("bad conv: code=%d stderr=%q", code, stderr)
	}
}

func TestExpandDryRun(t *testing.T) {
	spec := writeSpec(t, tinySweep)
	code, stdout, stderr := runCLI(t, "-expand", spec)
	if code != 0 {
		t.Fatalf("code=%d stderr=%s", code, stderr)
	}
	lines := strings.Count(strings.TrimSpace(stdout), "\n") + 1
	if lines != 4 {
		t.Errorf("expanded %d cells, want 4:\n%s", lines, stdout)
	}
	if !strings.Contains(stdout, `"algorithm":"centroid"`) || !strings.Contains(stdout, `"key":"`) {
		t.Errorf("expansion lines incomplete:\n%s", stdout)
	}
}

func TestTraceFlag(t *testing.T) {
	spec := writeSpec(t, tinySweep)
	trace := filepath.Join(t.TempDir(), "run.jsonl")
	code, _, stderr := runCLI(t, "-sweep", spec, "-trace", trace, "-workers", "1")
	if code != 0 {
		t.Fatalf("code=%d stderr=%s", code, stderr)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"event":"sweep.start"`, `"event":"sweep.cell.done"`, `"event":"sweep.done"`, `"event":"trial.done"`} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("trace missing %s", want)
		}
	}
}

func TestTimeoutCancelsButCaches(t *testing.T) {
	spec := writeSpec(t, tinySweep)
	out := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // simulate an immediate SIGINT/-timeout expiry
	var stdout, stderr bytes.Buffer
	code := run(ctx, []string{"-sweep", spec, "-out", out, "-timeout", time.Minute.String()}, &stdout, &stderr)
	if code != 1 || !strings.Contains(stderr.String(), "rerun with -resume") {
		t.Errorf("code=%d stderr=%q", code, stderr.String())
	}
}

// syncBuffer is a bytes.Buffer safe for the concurrent writer/reader split of
// the obs-http test: the CLI goroutine writes stderr while the test polls it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestObsHTTPResultsByteIdentical runs the same sweep with and without the
// ops plane attached: observability must not perturb the computation.
func TestObsHTTPResultsByteIdentical(t *testing.T) {
	spec := writeSpec(t, tinySweep)
	plainOut, obsOut := t.TempDir(), t.TempDir()

	code, _, stderr := runCLI(t, "-sweep", spec, "-out", plainOut, "-workers", "1")
	if code != 0 {
		t.Fatalf("plain run: code=%d stderr=%s", code, stderr)
	}
	code, _, stderr = runCLI(t, "-sweep", spec, "-out", obsOut, "-workers", "1",
		"-obs-http", "127.0.0.1:0")
	if code != 0 {
		t.Fatalf("obs run: code=%d stderr=%s", code, stderr)
	}
	if !strings.Contains(stderr, "obs: serving http://") {
		t.Errorf("bound address not announced on stderr:\n%s", stderr)
	}

	plain, err := os.ReadFile(filepath.Join(plainOut, "summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	obsd, err := os.ReadFile(filepath.Join(obsOut, "summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, obsd) {
		t.Error("summary with -obs-http differs from plain run")
	}
}

// bigSweep is slow enough (many BNCL cells) that the ops-plane test can
// scrape the live server mid-run before canceling the sweep.
const bigSweep = `{
	"name": "cli-obs-test",
	"scenarios": [{"N": 60, "Field": 80, "AnchorFrac": 0.2, "Seed": 1}],
	"algorithms": ["bncl-grid"],
	"seeds": [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20],
	"trials": 4
}`

// TestObsHTTPServesDuringSweep starts a long sweep with -obs-http, scrapes
// the live endpoints mid-run, then cancels the sweep.
func TestObsHTTPServesDuringSweep(t *testing.T) {
	spec := writeSpec(t, bigSweep)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var stdout bytes.Buffer
	errBuf := &syncBuffer{}
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-sweep", spec, "-out", t.TempDir(), "-workers", "1",
			"-obs-http", "127.0.0.1:0",
		}, &stdout, errBuf)
	}()

	// The bound address is announced on stderr before the sweep starts.
	addr := ""
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" && time.Now().Before(deadline) {
		if s := errBuf.String(); strings.Contains(s, "obs: serving http://") {
			s = s[strings.Index(s, "obs: serving http://")+len("obs: serving http://"):]
			addr = s[:strings.Index(s, "/")]
		} else {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if addr == "" {
		t.Fatalf("ops server address never appeared on stderr:\n%s", errBuf.String())
	}

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if st, body := get("/healthz"); st != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", st, body)
	}
	if st, body := get("/buildinfo"); st != 200 || !strings.Contains(body, "go_version") {
		t.Errorf("/buildinfo = %d %q", st, body)
	}
	if st, body := get("/metrics"); st != 200 || !strings.Contains(body, "wsnloc_goroutines") {
		t.Errorf("/metrics = %d, missing runtime metrics:\n%s", st, body)
	}

	cancel()
	select {
	case code := <-done:
		// 0 if the sweep managed to finish before the cancel landed.
		if code != 0 && code != 1 {
			t.Errorf("run exit code = %d, want 0 or 1", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit after cancel")
	}
}

// TestShardedRunThenMerge drives the distributed workflow end to end
// through the CLI: three shard processes over one output directory, then
// -merge, whose summary.json must be byte-identical to a single-process run
// of the same document.
func TestShardedRunThenMerge(t *testing.T) {
	spec := writeSpec(t, tinySweep)

	single := t.TempDir()
	if code, _, stderr := runCLI(t, "-sweep", spec, "-out", single, "-workers", "1"); code != 0 {
		t.Fatalf("single run: code=%d stderr=%s", code, stderr)
	}
	want, err := os.ReadFile(filepath.Join(single, "summary.json"))
	if err != nil {
		t.Fatal(err)
	}

	out := t.TempDir()
	for idx := 0; idx < 3; idx++ {
		code, stdout, stderr := runCLI(t, "-sweep", spec, "-out", out,
			"-shards", "3", "-shard-index", strconv.Itoa(idx))
		if code != 0 {
			t.Fatalf("shard %d: code=%d stderr=%s", idx, code, stderr)
		}
		if !strings.Contains(stdout, "shard "+strconv.Itoa(idx)+"/3:") {
			t.Errorf("shard %d stdout missing shard line:\n%s", idx, stdout)
		}
		// A shard never writes the full summary.json; its slice goes to
		// summary.<index>.json.
		if _, err := os.Stat(filepath.Join(out, "summary."+strconv.Itoa(idx)+".json")); err != nil {
			t.Errorf("shard %d summary: %v", idx, err)
		}
	}
	if _, err := os.Stat(filepath.Join(out, "summary.json")); !os.IsNotExist(err) {
		t.Errorf("shard runs wrote summary.json prematurely: %v", err)
	}

	code, stdout, stderr := runCLI(t, "-sweep", spec, "-out", out, "-merge")
	if code != 0 {
		t.Fatalf("merge: code=%d stderr=%s", code, stderr)
	}
	if !strings.Contains(stdout, "merged from shard journals") {
		t.Errorf("merge stdout:\n%s", stdout)
	}
	got, err := os.ReadFile(filepath.Join(out, "summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("merged summary not byte-identical to single-process run\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMergeIncompleteExitsWithMessage: merging before all shards have run
// fails with the distinct not-every-shard-has-finished message.
func TestMergeIncompleteExitsWithMessage(t *testing.T) {
	spec := writeSpec(t, tinySweep)
	out := t.TempDir()
	if code, _, stderr := runCLI(t, "-sweep", spec, "-out", out, "-shards", "3", "-shard-index", "0"); code != 0 {
		t.Fatalf("shard 0: code=%d stderr=%s", code, stderr)
	}
	code, _, stderr := runCLI(t, "-sweep", spec, "-out", out, "-merge")
	if code != 1 || !strings.Contains(stderr, "not every shard has finished") {
		t.Errorf("incomplete merge: code=%d stderr=%q", code, stderr)
	}
}

// TestShardFlagValidation pins the CLI-level sharding errors.
func TestShardFlagValidation(t *testing.T) {
	spec := writeSpec(t, tinySweep)
	out := t.TempDir()
	// Sharding without -out has no shared directory to meet in.
	if code, _, stderr := runCLI(t, "-sweep", spec, "-shards", "2"); code != 1 || !strings.Contains(stderr, "OutDir") {
		t.Errorf("shards without -out: code=%d stderr=%q", code, stderr)
	}
	if code, _, stderr := runCLI(t, "-sweep", spec, "-out", out, "-shards", "2", "-shard-index", "5"); code != 1 || stderr == "" {
		t.Errorf("shard index out of range: code=%d stderr=%q", code, stderr)
	}
	if code, _, stderr := runCLI(t, "-sweep", spec, "-merge"); code != 2 || !strings.Contains(stderr, "-merge requires -out") {
		t.Errorf("merge without -out: code=%d stderr=%q", code, stderr)
	}
}

// TestShardHeldReportsClearly: a second process on a freshly leased shard is
// turned away with the lease-held message.
func TestShardHeldReportsClearly(t *testing.T) {
	spec := writeSpec(t, tinySweep)
	out := t.TempDir()
	lease, _, err := sweep.AcquireShardLease(out, 0, "other-host", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	code, _, stderr := runCLI(t, "-sweep", spec, "-out", out, "-shards", "2", "-shard-index", "0")
	if code != 1 || !strings.Contains(stderr, "another worker is running this shard") {
		t.Errorf("held shard: code=%d stderr=%q", code, stderr)
	}
}
