// Command wsnloc-sweep executes an experiment grid — scenarios × algorithms
// × option sets × seeds — with a content-addressed result cache, so
// interrupted or repeated sweeps only compute the cells that are missing.
//
// Usage:
//
//	wsnloc-sweep -sweep sweep.json -out results/          # cold run
//	wsnloc-sweep -sweep sweep.json -out results/ -resume  # reuse cached cells
//	wsnloc-sweep -sweep sweep.json -out results/ -workers 8 -timeout 10m
//	wsnloc-sweep -expand sweep.json                       # print the cell list, run nothing
//
// A killed run (timeout, Ctrl-C) leaves every completed cell in
// out/objects/ and a checkpoint journal in out/journal.jsonl; re-running
// with -resume picks up where it stopped, re-executing zero completed
// cells. The merged summary (out/summary.json and the stdout tables) is
// byte-identical whether cells were computed or loaded from the cache.
//
// Observability:
//
//	wsnloc-sweep -sweep sweep.json -out results/ -trace run.jsonl  # sweep + trial events
//	wsnloc-sweep -sweep sweep.json -out results/ -v                # event lines on stderr
//	wsnloc-sweep -sweep sweep.json -obs-http :6060                 # live /metrics + /events while running
//
// Distributed sweeps: the grid can be split across processes (or hosts
// sharing the output directory) by content-addressed shard, each protected
// by a crash-safe lease, and merged afterwards:
//
//	wsnloc-sweep -sweep sweep.json -out results/ -shards 3 -shard-index 0
//	wsnloc-sweep -sweep sweep.json -out results/ -shards 3 -shard-index 1
//	wsnloc-sweep -sweep sweep.json -out results/ -shards 3 -shard-index 2
//	wsnloc-sweep -sweep sweep.json -out results/ -merge   # byte-identical to a single-process run
//
// A shard killed mid-run is resumed with the same command plus -resume; the
// merged summary is still byte-identical to an uninterrupted run.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"wsnloc/internal/alg"
	"wsnloc/internal/obs"
	"wsnloc/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("wsnloc-sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath  = fs.String("sweep", "", "JSON sweep document (required unless -expand)")
		outDir    = fs.String("out", "", "output directory for the cache, journal, and summary (empty = in-memory, nothing persisted)")
		resume    = fs.Bool("resume", false, "reuse cached cell results from -out instead of recomputing them")
		workers   = fs.Int("workers", 0, "concurrent cells (0 = all CPUs, 1 = sequential; results identical)")
		conv      = fs.String("conv", "", "BNCL message-convolution path (auto|sparse|fft) for option sets that leave it unset; changes cell cache keys")
		censor    = fs.Float64("censor", 0, "BNCL message-censoring threshold for option sets that leave it unset (0 = off); changes cell cache keys")
		prune     = fs.Float64("prune", 0, "BNCL belief support-pruning floor for option sets that leave it unset (0 = off, < 1); changes cell cache keys")
		timeout   = fs.Duration("timeout", 0, "abort the sweep after this duration (0 = no limit); completed cells stay cached, exit 1")
		expand    = fs.String("expand", "", "print the expanded cell list of this sweep document and exit")
		shards    = fs.Int("shards", 0, "split the grid into this many content-addressed shards and run only -shard-index (requires -out)")
		shardIdx  = fs.Int("shard-index", 0, "which shard of -shards this process runs, in [0, shards)")
		mergeOnly = fs.Bool("merge", false, "merge the shard journals and cache in -out into the full summary; runs nothing")
		leaseTTL  = fs.Duration("lease-ttl", 0, "shard lease time-to-live; a shard silent this long is presumed dead and its lease stolen (0 = default)")
		tracePath = fs.String("trace", "", "write a JSONL trace of sweep and trial events to this path")
		obsAddr   = fs.String("obs-http", "", "serve the live ops plane (/metrics, /events, /healthz, /buildinfo, /debug/pprof) on this address, e.g. :6060")
		verbose   = fs.Bool("v", false, "print sweep event lines on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *expand != "" {
		return expandOnly(*expand, stdout, stderr)
	}
	if *specPath == "" {
		fmt.Fprintln(stderr, "wsnloc-sweep: -sweep is required (see -h)")
		return 2
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		fmt.Fprintln(stderr, "wsnloc-sweep:", err)
		return 1
	}
	sw, err := sweep.ParseSpec(data)
	if err != nil {
		fmt.Fprintf(stderr, "wsnloc-sweep: parsing %s: %v\n", *specPath, err)
		return 1
	}
	if *conv != "" || *censor != 0 || *prune != 0 {
		// These overrides are semantic (they participate in spec hashing), so
		// each only fills option sets that left its knob unspecified —
		// explicit per-set choices in the sweep document win.
		if len(sw.AlgOpts) == 0 {
			sw.AlgOpts = []alg.Opts{{}}
		}
		for i := range sw.AlgOpts {
			if *conv != "" && sw.AlgOpts[i].Conv == "" {
				sw.AlgOpts[i].Conv = *conv
			}
			if *censor != 0 && sw.AlgOpts[i].Censor == 0 {
				sw.AlgOpts[i].Censor = *censor
			}
			if *prune != 0 && sw.AlgOpts[i].Prune == 0 {
				sw.AlgOpts[i].Prune = *prune
			}
		}
	}

	if *mergeOnly {
		// Merge applies after the fill-unset overrides above: the grid (and
		// its cache keys) must match what the shard runs computed, so the
		// merge command takes the same -conv/-censor/-prune flags.
		if *outDir == "" {
			fmt.Fprintln(stderr, "wsnloc-sweep: -merge requires -out (the directory the shards wrote)")
			return 2
		}
		res, err := sweep.Merge(sw, *outDir)
		if err != nil {
			if errors.Is(err, sweep.ErrIncomplete) {
				fmt.Fprintf(stderr, "wsnloc-sweep: not every shard has finished: %v\n", err)
			} else {
				fmt.Fprintln(stderr, "wsnloc-sweep:", err)
			}
			return 1
		}
		if code := emitSummary(res, *outDir, "summary.json", stdout, stderr); code != 0 {
			return code
		}
		fmt.Fprintf(stdout, "cells %d: merged from shard journals and cache\n", len(res.Cells))
		return 0
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var tracers []obs.Tracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(stderr, "wsnloc-sweep:", err)
			return 1
		}
		jsonl := obs.NewJSONL(f)
		tracers = append(tracers, jsonl)
		// Check the sink on every exit path: a trace that silently lost
		// events must fail the run, not just log nothing. (The -out journal
		// has the same guarantee inside the sweep engine.)
		defer func() {
			if err := jsonl.Err(); err != nil {
				fmt.Fprintln(stderr, "wsnloc-sweep: trace:", err)
				if code == 0 {
					code = 1
				}
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "wsnloc-sweep: trace:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}
	if *verbose {
		tracers = append(tracers, obs.NewLog(stderr))
	}
	var reg *obs.Registry
	if *obsAddr != "" {
		reg = obs.NewRegistry()
		tracers = append(tracers, obs.NewMetricsSink(reg))
		bc := obs.NewBroadcast(obs.DefaultBroadcastDepth)
		tracers = append(tracers, bc)
		sampler := obs.StartRuntimeSampler(reg, 0)
		defer sampler.Stop()
		srv, err := obs.StartOpsServer(*obsAddr, reg, bc)
		if err != nil {
			fmt.Fprintln(stderr, "wsnloc-sweep:", err)
			return 1
		}
		// Graceful on the way out: open /events streams end with a clean EOF
		// instead of a connection reset, bounded so a stuck peer cannot hold
		// the process hostage.
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(sctx)
		}()
		fmt.Fprintf(stderr, "obs: serving http://%s/ (metrics, events, pprof)\n", srv.Addr())
	}

	res, err := sweep.RunCtx(ctx, sw, sweep.Options{
		OutDir:     *outDir,
		Workers:    *workers,
		Resume:     *resume,
		Shards:     *shards,
		ShardIndex: *shardIdx,
		LeaseTTL:   *leaseTTL,
		Tracer:     obs.Multi(tracers...),
		Metrics:    reg,
	})
	if err != nil {
		switch {
		case errors.Is(err, sweep.ErrShardHeld):
			fmt.Fprintf(stderr, "wsnloc-sweep: %v — another worker is running this shard; pick a different -shard-index or wait out its lease\n", err)
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			fmt.Fprintf(stderr, "wsnloc-sweep: canceled (%v); completed cells remain cached in %s — rerun with -resume\n",
				err, *outDir)
		default:
			fmt.Fprintln(stderr, "wsnloc-sweep:", err)
		}
		return 1
	}

	// A shard writes summary.<index>.json — its slice of the grid — never
	// summary.json, which only -merge (the full grid, byte-identical to a
	// single-process run) produces.
	name := "summary.json"
	if *shards > 1 {
		name = fmt.Sprintf("summary.%d.json", *shardIdx)
		fmt.Fprintf(stdout, "shard %d/%d: %d local cells, %d skipped; merge with -merge once every shard has run\n",
			*shardIdx, *shards, len(res.Cells), res.Skipped)
	}
	if code := emitSummary(res, *outDir, name, stdout, stderr); code != 0 {
		return code
	}
	fmt.Fprintf(stdout, "cells %d: executed %d, cached %d\n",
		len(res.Cells), res.Executed, res.Cached)
	return 0
}

// emitSummary writes the result's summary into dir/name (when dir is set)
// and prints the curve tables.
func emitSummary(res *sweep.Result, dir, name string, stdout, stderr io.Writer) int {
	sum := res.Summary()
	if dir != "" {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(stderr, "wsnloc-sweep:", err)
			return 1
		}
		werr := sum.WriteJSON(f)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			fmt.Fprintf(stderr, "wsnloc-sweep: writing %s failed\n", path)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
	}
	if t := sum.Table(); t != "" {
		fmt.Fprint(stdout, t)
	}
	return 0
}

// expandOnly prints the cell expansion of a sweep document, one JSON line
// per cell with its content-addressed key — the dry-run view of what a
// sweep would compute.
func expandOnly(path string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "wsnloc-sweep:", err)
		return 1
	}
	sw, err := sweep.ParseSpec(data)
	if err != nil {
		fmt.Fprintf(stderr, "wsnloc-sweep: parsing %s: %v\n", path, err)
		return 1
	}
	cells, err := sw.Cells()
	if err != nil {
		fmt.Fprintln(stderr, "wsnloc-sweep:", err)
		return 1
	}
	enc := json.NewEncoder(stdout)
	for i, c := range cells {
		key, err := c.Key()
		if err != nil {
			fmt.Fprintln(stderr, "wsnloc-sweep:", err)
			return 1
		}
		if err := enc.Encode(map[string]interface{}{
			"cell": i, "key": key, "algorithm": c.Spec.Algorithm,
			"seed": c.Spec.Seed, "trials": c.Trials,
		}); err != nil {
			fmt.Fprintln(stderr, "wsnloc-sweep:", err)
			return 1
		}
	}
	return 0
}
