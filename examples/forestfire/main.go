// Forest-fire monitoring: sensors are airdropped in clusters along a
// C-shaped ridge (the burn perimeter). The environment is hostile — NLOS
// ranging bias from vegetation and 15% packet loss — and only the drop
// aircraft's GPS fixes provide anchors. The example reports the error CDF,
// the figure a deployment planner actually needs ("what fraction of sensors
// do we know to within 5 m?").
//
//	go run ./examples/forestfire
package main

import (
	"fmt"
	"log"
	"strings"

	"wsnloc"
)

func main() {
	scenario := wsnloc.Scenario{
		N:          160,
		AnchorFrac: 0.09,
		Field:      140,
		Shape:      "c",        // the ridge
		Gen:        "clusters", // airdropped sticks of sensors
		R:          22,
		Ranger:     "nlos", // vegetation adds positive range bias
		NoiseFrac:  0.12,
		NLOSProb:   0.25,
		Loss:       0.15,
		Seed:       23,
	}
	problem, err := scenario.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ridge deployment: %d sensors, %d GPS fixes, avg degree %.1f, %.0f%% packet loss\n\n",
		problem.Deploy.N(), problem.Deploy.NumAnchors(), problem.Graph.AvgDegree(), 100*scenario.Loss)

	algs := []wsnloc.Algorithm{
		wsnloc.BNCLGrid(wsnloc.AllPreKnowledge()),
		mustBaseline("dv-hop"),
		mustBaseline("min-max"),
	}
	evals := make([]wsnloc.Eval, len(algs))
	for i, alg := range algs {
		result, err := wsnloc.Localize(problem, alg, 5)
		if err != nil {
			log.Fatal(err)
		}
		evals[i] = wsnloc.Evaluate(problem, result)
	}

	fmt.Println("error CDF — fraction of sensors localized to within x meters:")
	fmt.Printf("%-8s", "x(m)")
	for _, alg := range algs {
		fmt.Printf("%-16s", alg.Name())
	}
	fmt.Println()
	for _, x := range []float64{2, 5, 10, 15, 22, 44} {
		fmt.Printf("%-8.0f", x)
		for i := range algs {
			fmt.Printf("%-16.2f", evals[i].CDF([]float64{x})[0])
		}
		fmt.Println()
	}

	fmt.Println()
	for i, alg := range algs {
		bar := strings.Repeat("#", int(50*evals[i].CoverageWithin(5)))
		fmt.Printf("%-16s within 5 m: %5.1f%%  %s\n", alg.Name(), 100*evals[i].CoverageWithin(5), bar)
	}
}

func mustBaseline(name string) wsnloc.Algorithm {
	alg, err := wsnloc.Baseline(name)
	if err != nil {
		log.Fatal(err)
	}
	return alg
}
