// Quickstart: build a default sensor network, localize it with BNCL (the
// paper's algorithm) and with DV-Hop, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wsnloc"
)

func main() {
	// A 150-node network in a 100×100 m field: 10% anchors, 15 m radio
	// range, 10% Gaussian ranging noise (all defaults).
	scenario := wsnloc.Scenario{N: 150, Seed: 7}
	problem, err := scenario.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d anchors, avg degree %.1f\n\n",
		problem.Deploy.N(), problem.Deploy.NumAnchors(), problem.Graph.AvgDegree())

	for _, alg := range []wsnloc.Algorithm{
		wsnloc.BNCLGrid(wsnloc.AllPreKnowledge()),
		wsnloc.BNCLGrid(wsnloc.NoPreKnowledge()),
		mustBaseline("dv-hop"),
		mustBaseline("min-max"),
	} {
		result, err := wsnloc.Localize(problem, alg, 42)
		if err != nil {
			log.Fatal(err)
		}
		e := wsnloc.Evaluate(problem, result)
		fmt.Printf("%-16s mean error %5.2f m (%.3f R), coverage %5.1f%%, %6.1f msgs/node\n",
			alg.Name(), e.MeanErr(), e.NormMean(), 100*e.Coverage(), e.MsgsPerNode())
	}
}

func mustBaseline(name string) wsnloc.Algorithm {
	alg, err := wsnloc.Baseline(name)
	if err != nil {
		log.Fatal(err)
	}
	return alg
}
