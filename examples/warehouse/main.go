// Warehouse asset localization: sensors are attached to pallets in an
// H-shaped warehouse (two storage halls joined by a cross-aisle). Ranging is
// RSSI-based (multiplicative noise) and the floor plan is known — exactly
// the "pre-knowledge" regime the paper targets: the map prior keeps
// estimates out of the walls, and hop annuli localize pallets deep in the
// halls that hear no anchor directly.
//
//	go run ./examples/warehouse
package main

import (
	"fmt"
	"log"

	"wsnloc"
)

func main() {
	scenario := wsnloc.Scenario{
		N:          180,
		AnchorFrac: 0.08, // a few surveyed gateways
		Field:      120,
		Shape:      "h",    // two halls + connecting aisle
		Gen:        "grid", // pallets sit on a (jittered) rack grid
		Anchors:    "grid", // gateways mounted evenly
		R:          18,
		Ranger:     "rssi", // cheap radios: RSSI ranging
		NoiseFrac:  0.25,
		Seed:       11,
	}
	problem, err := scenario.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warehouse: %d pallets, %d gateways, avg degree %.1f\n\n",
		problem.Deploy.N(), problem.Deploy.NumAnchors(), problem.Graph.AvgDegree())

	withMap := wsnloc.BNCLGrid(wsnloc.AllPreKnowledge())
	noMap := wsnloc.BNCLGrid(wsnloc.NoPreKnowledge())
	dvhop := mustBaseline("dv-hop")

	fmt.Printf("%-18s %-10s %-10s %-10s %s\n", "algorithm", "mean(m)", "median(m)", "p90(m)", "cov@0.5R")
	for _, alg := range []wsnloc.Algorithm{withMap, noMap, dvhop} {
		result, err := wsnloc.Localize(problem, alg, 3)
		if err != nil {
			log.Fatal(err)
		}
		e := wsnloc.Evaluate(problem, result)
		fmt.Printf("%-18s %-10.2f %-10.2f %-10.2f %.1f%%\n",
			alg.Name(), e.MeanErr(), e.MedianErr(), e.P90Err(),
			100*e.CoverageWithin(0.5*problem.R))
	}

	// How much of the map advantage is about keeping estimates feasible?
	region, _ := scenario.Region()
	result, _ := wsnloc.Localize(problem, noMap, 3)
	escaped := 0
	localized := 0
	for _, id := range problem.Deploy.UnknownIDs() {
		if !result.Localized[id] {
			continue
		}
		localized++
		if !region.Contains(result.Est[id]) {
			escaped++
		}
	}
	fmt.Printf("\nwithout the floor plan, %d/%d estimates land inside walls or outside the building\n",
		escaped, localized)
}

func mustBaseline(name string) wsnloc.Algorithm {
	alg, err := wsnloc.Baseline(name)
	if err != nil {
		log.Fatal(err)
	}
	return alg
}
