// Mobile-target tracking: a static sensor field is first localized with
// BNCL, then a mobile node (a firefighter, a forklift, a robot) moves
// through the field and is tracked by the sequential Bayesian filter,
// ranging against the *estimated* static positions. The example compares
// tracking against BNCL-estimated references with tracking against the true
// reference positions — the gap is the cost of imperfect self-localization.
//
//	go run ./examples/mobiletracking
package main

import (
	"fmt"
	"log"

	"wsnloc"
)

func main() {
	// Phase 1: self-localize the static field.
	scenario := wsnloc.Scenario{N: 120, AnchorFrac: 0.12, Field: 90, R: 18, Seed: 31}
	problem, err := scenario.Build()
	if err != nil {
		log.Fatal(err)
	}
	result, err := wsnloc.Localize(problem, wsnloc.BNCLGrid(wsnloc.AllPreKnowledge()), 8)
	if err != nil {
		log.Fatal(err)
	}
	selfEval := wsnloc.Evaluate(problem, result)
	fmt.Printf("phase 1 — field self-localization: mean error %.2f m, coverage %.0f%%\n\n",
		selfEval.MeanErr(), 100*selfEval.Coverage())

	// Phase 2: track a mobile node through the field.
	const maxStep = 2.5
	ranger := wsnloc.TOARanger(problem.R, 0.08)
	bounds := wsnloc.NewRect(0, 0, scenario.Field, scenario.Field)

	mkTracker := func() *wsnloc.Tracker {
		tr, err := wsnloc.NewTracker(nil, bounds, 60, maxStep, ranger)
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}
	trEst := mkTracker()  // ranges against BNCL-estimated positions
	trTrue := mkTracker() // oracle: ranges against true positions
	ekf, err := wsnloc.NewEKFTracker(wsnloc.V2(45, 45), 30, maxStep, ranger.Sigma)
	if err != nil {
		log.Fatal(err)
	}

	stream := wsnloc.NewStream(99)
	walk := wsnloc.RandomWaypoint{
		Region:   bounds.Expand(-10),
		SpeedMin: 1, SpeedMax: maxStep,
	}
	trace := walk.Trace(wsnloc.V2(45, 45), 120, stream.Split(1))

	var sumEst, sumTrue, sumEKF float64
	var steps int
	for step, truth := range trace {
		// The mobile hears every static node within radio range.
		var obsEst, obsTrue []wsnloc.RangeObs
		for id, pos := range problem.Deploy.Pos {
			d := truth.Dist(pos)
			if d > problem.R || !result.Localized[id] {
				continue
			}
			meas := ranger.Measure(d, stream)
			obsEst = append(obsEst, wsnloc.RangeObs{From: result.Est[id], Meas: meas})
			obsTrue = append(obsTrue, wsnloc.RangeObs{From: pos, Meas: meas})
		}
		estE, _ := trEst.Step(obsEst)
		estT, _ := trTrue.Step(obsTrue)
		estK, _ := ekf.Step(obsEst)
		if step >= 10 { // burn-in
			sumEst += estE.Dist(truth)
			sumTrue += estT.Dist(truth)
			sumEKF += estK.Dist(truth)
			steps++
		}
	}

	fmt.Printf("phase 2 — tracking over %d steps:\n", steps)
	fmt.Printf("  against BNCL-estimated references: mean error %.2f m\n", sumEst/float64(steps))
	fmt.Printf("  against true references (oracle):  mean error %.2f m\n", sumTrue/float64(steps))
	fmt.Printf("  EKF baseline (same observations):  mean error %.2f m\n", sumEKF/float64(steps))
	fmt.Printf("  cost of imperfect self-localization: %.2f m\n",
		sumEst/float64(steps)-sumTrue/float64(steps))
}
