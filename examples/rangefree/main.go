// Range-free localization: the cheapest sensor nodes have no ranging
// hardware at all — the only measurement is "who can hear whom". BNCL runs
// unchanged in this regime by swapping the ranging model for a flat
// in-range likelihood: connectivity plus pre-knowledge still yields a
// usable posterior, and beats the classic range-free pipelines (DV-Hop,
// centroid) that were designed for exactly this setting.
//
//	go run ./examples/rangefree
package main

import (
	"fmt"
	"log"

	"wsnloc"
)

func main() {
	scenario := wsnloc.Scenario{
		N:          140,
		AnchorFrac: 0.12,
		Field:      95,
		R:          16,
		Ranger:     "hop", // connectivity-only: every link "measures" R
		Seed:       19,
	}
	problem, err := scenario.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range-free network: %d nodes, %d anchors, avg degree %.1f — no ranging hardware\n\n",
		problem.Deploy.N(), problem.Deploy.NumAnchors(), problem.Graph.AvgDegree())

	fmt.Printf("%-16s %-10s %-10s %-10s\n", "algorithm", "median(m)", "p90(m)", "cov@0.5R")
	for _, name := range []string{"bncl-grid", "bncl-particle", "dv-hop", "w-centroid", "min-max"} {
		alg, err := wsnloc.Baseline(name)
		if err != nil {
			log.Fatal(err)
		}
		result, err := wsnloc.Localize(problem, alg, 2)
		if err != nil {
			log.Fatal(err)
		}
		e := wsnloc.Evaluate(problem, result)
		fmt.Printf("%-16s %-10.2f %-10.2f %.1f%%\n",
			alg.Name(), e.MedianErr(), e.P90Err(), 100*e.CoverageWithin(0.5*problem.R))
	}

	fmt.Println("\nconnectivity + pre-knowledge substitutes for a ranging radio:")
	fmt.Println("the Bayesian posterior fuses hop annuli, the deployment map, and")
	fmt.Println("negative evidence that geometric range-free pipelines cannot use.")
}
