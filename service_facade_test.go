package wsnloc_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"wsnloc"
)

func facadeSpec() wsnloc.Spec {
	return wsnloc.Spec{
		Scenario:  wsnloc.Scenario{N: 30, Field: 50, AnchorFrac: 0.3, Seed: 4},
		Algorithm: "centroid",
		Seed:      9,
	}
}

// TestServiceFacade mounts a Service behind an httptest server and drives
// it through the facade surface: SubmitSpec, NewServiceClient, the memo
// (Cached on resubmit), async job polling, and graceful Shutdown.
func TestServiceFacade(t *testing.T) {
	svc, err := wsnloc.NewService(wsnloc.ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	ctx := context.Background()
	first, err := wsnloc.SubmitSpec(ctx, ts.URL, facadeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first submission reported Cached")
	}
	if len(first.SpecHash) != 64 {
		t.Errorf("spec hash %q is not hex SHA-256", first.SpecHash)
	}

	client := wsnloc.NewServiceClient(ts.URL)
	again, err := client.Solve(ctx, facadeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("resubmission did not hit the memo")
	}
	if string(again.Raw) != string(first.Raw) {
		t.Error("memo hit bytes differ from the first response")
	}

	// Async path: 202 with a job id, polled to completion via Client.Job.
	fresh := facadeSpec()
	fresh.Seed = 11 // distinct content address so the memo cannot answer
	body, err := json.Marshal(fresh)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/solve?async=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var accepted struct {
		JobID string `json:"job_id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&accepted)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || accepted.JobID == "" {
		t.Fatalf("async solve: status %d, job id %q", resp.StatusCode, accepted.JobID)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := client.Job(ctx, accepted.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			break
		}
		if st.State == "error" {
			t.Fatalf("async job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("async job stuck in state %q", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := svc.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
