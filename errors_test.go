package wsnloc_test

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"wsnloc"
)

// TestNoPanicOnMalformedInputs sweeps the public facade with invalid inputs:
// every failure must surface as an error wrapping one of the exported
// sentinels — never a panic. Any panic fails the test directly.
func TestNoPanicOnMalformedInputs(t *testing.T) {
	scenarios := []struct {
		name string
		s    wsnloc.Scenario
	}{
		{"negative nodes", wsnloc.Scenario{N: -10}},
		{"anchor frac above one", wsnloc.Scenario{AnchorFrac: 2}},
		{"negative field", wsnloc.Scenario{Field: -1}},
		{"negative range", wsnloc.Scenario{R: -5}},
		{"unknown shape", wsnloc.Scenario{Shape: "dodecahedron"}},
		{"unknown ranger", wsnloc.Scenario{Ranger: "lidar"}},
		{"loss out of range", wsnloc.Scenario{Loss: 1.0}},
	}
	for _, tc := range scenarios {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.s.Build(); !errors.Is(err, wsnloc.ErrBadScenario) {
				t.Fatalf("Build err = %v, want ErrBadScenario", err)
			}
			if _, err := wsnloc.RunTrials(tc.s, mustAlg(t, "centroid"), 2); !errors.Is(err, wsnloc.ErrBadScenario) {
				t.Fatalf("RunTrials err = %v, want ErrBadScenario", err)
			}
		})
	}

	if _, err := wsnloc.Baseline("not-an-algorithm"); !errors.Is(err, wsnloc.ErrUnknownAlgorithm) {
		t.Errorf("Baseline err = %v, want ErrUnknownAlgorithm", err)
	}
	if _, err := wsnloc.NewAlgorithm("bncl-grid", wsnloc.AlgOpts{GridN: -4}); !errors.Is(err, wsnloc.ErrBadConfig) {
		t.Errorf("NewAlgorithm err = %v, want ErrBadConfig", err)
	}
	if _, err := wsnloc.Localize(nil, mustAlg(t, "bncl-grid"), 1); !errors.Is(err, wsnloc.ErrBadProblem) {
		t.Errorf("Localize(nil) err = %v, want ErrBadProblem", err)
	}
	if _, err := wsnloc.ParseSpec([]byte(`{"algorithm":"nope"}`)); !errors.Is(err, wsnloc.ErrBadSpec) {
		t.Errorf("ParseSpec err = %v, want ErrBadSpec", err)
	}
}

// TestRunTrialsBadConfigFacade checks the facade runners reject degenerate
// inputs — zero/negative trials, nil algorithms — with ErrBadConfig instead
// of silently running a defaulted experiment.
func TestRunTrialsBadConfigFacade(t *testing.T) {
	s := wsnloc.Scenario{N: 30, Field: 50, Seed: 2}
	cases := []struct {
		name string
		run  func() error
	}{
		{"zero trials", func() error {
			_, err := wsnloc.RunTrials(s, mustAlg(t, "centroid"), 0)
			return err
		}},
		{"negative trials", func() error {
			_, err := wsnloc.RunTrials(s, mustAlg(t, "centroid"), -1)
			return err
		}},
		{"nil algorithm", func() error {
			_, err := wsnloc.RunTrialsCtx(context.Background(), s, nil, 2)
			return err
		}},
		{"traced nil factory", func() error {
			_, err := wsnloc.RunTrialsTraced(s, nil, 2, 2, wsnloc.NewMemoryTracer())
			return err
		}},
		{"traced zero trials", func() error {
			_, err := wsnloc.RunTrialsTraced(s, func() wsnloc.Algorithm { return mustAlg(t, "centroid") },
				0, 1, wsnloc.NewMemoryTracer())
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.run(); !errors.Is(err, wsnloc.ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func mustAlg(t *testing.T, name string) wsnloc.Algorithm {
	t.Helper()
	a, err := wsnloc.Baseline(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestLocalizeCtxCancellation(t *testing.T) {
	p, err := wsnloc.Scenario{N: 60, Field: 70, Seed: 3}.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := wsnloc.BNCLGrid(wsnloc.AllPreKnowledge())
	if _, err := wsnloc.LocalizeCtx(ctx, a, p, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// And the uncanceled context path still runs to completion.
	if _, err := wsnloc.LocalizeCtx(context.Background(), a, p, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunTrialsCtxFacade(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := wsnloc.Scenario{N: 40, Field: 60, Seed: 5}
	if _, err := wsnloc.RunTrialsCtx(ctx, s, mustAlg(t, "centroid"), 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSpecEndToEnd runs a Spec through the facade: parse → run → evaluate,
// and checks the document round-trips.
func TestSpecEndToEnd(t *testing.T) {
	doc := []byte(`{
		"scenario": {"N": 50, "Field": 60, "Seed": 8},
		"algorithm": "dv-hop",
		"seed": 21
	}`)
	sp, err := wsnloc.ParseSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Version != wsnloc.SpecVersion {
		t.Errorf("normalized version = %d, want %d", sp.Version, wsnloc.SpecVersion)
	}
	p, res, err := wsnloc.RunSpec(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	e := wsnloc.Evaluate(p, res)
	if e.Coverage() <= 0 {
		t.Errorf("spec run localized nothing")
	}

	out, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	again, err := wsnloc.ParseSpec(out)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, sp) {
		t.Errorf("spec did not round-trip:\n got %+v\nwant %+v", again, sp)
	}
}
