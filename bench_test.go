package wsnloc_test

// Benchmark harness: one benchmark per table/figure of the evaluation (see
// DESIGN.md §4). Each BenchmarkEx runs the full experiment pipeline at a
// reduced quality so `go test -bench=.` regenerates every result's shape in
// minutes on one core; `cmd/wsnloc-bench -full` produces the paper-scale
// numbers recorded in EXPERIMENTS.md. Micro-benchmarks for the hot kernels
// (graph build, BP round, particle update) follow the experiment benches.

import (
	"io"
	"testing"

	"wsnloc"
	"wsnloc/internal/expt"
)

// benchQuality keeps experiment benchmarks tractable on a single core.
func benchQuality() expt.Quality { return expt.Quality{Trials: 1, Scale: 0.5} }

func benchExperiment(b *testing.B, id string) {
	e, err := expt.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, benchQuality()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1SummaryTable(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2AnchorSweep(b *testing.B)       { benchExperiment(b, "E2") }
func BenchmarkE3NoiseSweep(b *testing.B)        { benchExperiment(b, "E3") }
func BenchmarkE4ConnectivitySweep(b *testing.B) { benchExperiment(b, "E4") }
func BenchmarkE5SizeSweep(b *testing.B)         { benchExperiment(b, "E5") }
func BenchmarkE6ErrorCDF(b *testing.B)          { benchExperiment(b, "E6") }
func BenchmarkE7Convergence(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8MessageCost(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9PKAblation(b *testing.B)        { benchExperiment(b, "E9") }
func BenchmarkE10Irregular(b *testing.B)        { benchExperiment(b, "E10") }
func BenchmarkE11Irregularity(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12Resolution(b *testing.B)       { benchExperiment(b, "E12") }
func BenchmarkE13Mobile(b *testing.B)           { benchExperiment(b, "E13") }
func BenchmarkE14Placement(b *testing.B)        { benchExperiment(b, "E14") }
func BenchmarkE15Efficiency(b *testing.B)       { benchExperiment(b, "E15") }

// Micro-benchmarks: the per-run building blocks.

func BenchmarkScenarioBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (wsnloc.Scenario{N: 150, Seed: uint64(i)}).Build(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAlgorithm(b *testing.B, name string) {
	p, err := wsnloc.Scenario{N: 100, Seed: 1}.Build()
	if err != nil {
		b.Fatal(err)
	}
	alg, err := wsnloc.Baseline(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wsnloc.Localize(p, alg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalizeBNCLGrid(b *testing.B)     { benchAlgorithm(b, "bncl-grid") }
func BenchmarkLocalizeBNCLParticle(b *testing.B) { benchAlgorithm(b, "bncl-particle") }

// benchBNCLGridTraced measures the BNCL solve with a tracer attached, so the
// no-op case can be compared against BenchmarkLocalizeBNCLGrid: the
// observability layer must stay within noise (~2%) when disabled.
func benchBNCLGridTraced(b *testing.B, tr wsnloc.Tracer) {
	p, err := wsnloc.Scenario{N: 100, Seed: 1}.Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg := wsnloc.BNCLConfig{PK: wsnloc.AllPreKnowledge(), Tracer: tr}
	alg := wsnloc.BNCLWithConfig(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wsnloc.Localize(p, alg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalizeBNCLGridNopTracer(b *testing.B) {
	benchBNCLGridTraced(b, wsnloc.NopTracer())
}

func BenchmarkLocalizeBNCLGridMemTracer(b *testing.B) {
	mem := wsnloc.NewMemoryTracer()
	b.Cleanup(func() { mem.Reset() })
	benchBNCLGridTraced(b, mem)
}
func BenchmarkLocalizeDVHop(b *testing.B)        { benchAlgorithm(b, "dv-hop") }
func BenchmarkLocalizeLSMultilat(b *testing.B)   { benchAlgorithm(b, "ls-multilat") }
func BenchmarkLocalizeMDSMAP(b *testing.B)       { benchAlgorithm(b, "mds-map") }
